package serve

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"entropyip/internal/core"
	"entropyip/internal/obs"
	"entropyip/internal/obs/trace"
	"entropyip/internal/parallel"
)

// This file wires the server's obs.Registry: the static serving-plane
// counters the handlers feed directly, the scrape-time collectors over
// the other subsystems (registry cache, refresher streams, worker pools),
// the GET /metrics handler, and the per-request ID context plumbing.
//
// Conventions (documented in DESIGN.md "Observability"): every family is
// prefixed eip_, units are in the name (_seconds, _bytes), counters end
// in _total. Label cardinality is bounded by construction — `route` and
// `stage` come from finite compile-time sets, `model` tracks live
// refresher streams and is emitted through collectors so deleted models
// stop exporting instead of leaking series.

// trainingStageBuckets spans sub-second mining stages through
// multi-minute Bayesian structure searches on large windows.
var trainingStageBuckets = []float64{.01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// registerObservability installs everything beyond the per-route request
// metrics (which register route by route in handle). Called once from
// New, before the server handles traffic.
func (s *Server) registerObservability() {
	o := s.obs

	s.candidates = o.Counter("eip_generate_candidates_total",
		"Candidate addresses/prefixes streamed by POST generate.")
	s.observeAccepted = o.Counter("eip_observe_lines_total",
		"Observe NDJSON lines by outcome.", "result", "accepted")
	s.observeInvalid = o.Counter("eip_observe_lines_total",
		"Observe NDJSON lines by outcome.", "result", "invalid")

	// Per-encoding request counters for the two negotiated routes, all
	// four series pre-registered so the handlers index an array.
	for ri, route := range [...]string{"generate", "observe"} {
		for ei, encName := range [...]string{"ndjson", "binary"} {
			s.encRequests[ri][ei] = o.Counter("eip_encoding_requests_total",
				"Requests by route and negotiated wire encoding.",
				"route", route, "encoding", encName)
		}
	}

	// One histogram series per pipeline stage, pre-registered so the
	// OnStage callback is a map lookup on a read-only map plus a lock-free
	// observe — no allocation, no registration race.
	s.stageHist = make(map[string]*obs.Histogram, len(core.BuildStages))
	for _, stage := range core.BuildStages {
		s.stageHist[stage] = o.Histogram("eip_training_stage_seconds",
			"Wall time of each training pipeline stage.", trainingStageBuckets, "stage", stage)
	}

	loadSeconds := o.Histogram("eip_registry_load_seconds",
		"Latency of model loads from disk (cache misses).", nil)
	s.reg.SetLoadObserver(loadSeconds.Observe)

	s.refresher.logger = s.logger
	s.refresher.stage = s.observeStage
	s.refresher.retrains = o.Counter("eip_refresh_retrains_total",
		"Drift-triggered retrains that ran (shed ones excluded).")
	s.refresher.retrainSeconds = o.Histogram("eip_refresh_retrain_seconds",
		"Wall time of one retrain + shadow evaluation + publish, including pool queue wait.",
		trainingStageBuckets)

	// Registry cache: one collector reading one Stats snapshot per scrape.
	o.Collect(func(e *obs.Expo) {
		st := s.reg.Stats()
		e.Gauge("eip_registry_models", "Distinct model names in the registry.", float64(st.Models))
		e.Gauge("eip_registry_versions", "Stored model versions across all names.", float64(st.Versions))
		e.Gauge("eip_registry_cache_entries", "Decoded models currently cached.", float64(st.CacheEntries))
		e.Gauge("eip_registry_cache_capacity", "Decoded-model cache capacity.", float64(st.CacheCapacity))
		e.Counter("eip_registry_cache_hits_total", "Model cache hits.", float64(st.Hits))
		e.Counter("eip_registry_cache_misses_total", "Model cache misses.", float64(st.Misses))
		e.Counter("eip_registry_cache_evictions_total", "Models evicted from the cache.", float64(st.Evictions))
		e.Counter("eip_registry_coalesced_loads_total", "Lookups that joined another goroutine's in-flight disk load.", float64(st.Coalesced))
	})

	// Worker pools: the bounded training pool and the package-level
	// training-pipeline scheduler.
	o.Collect(func(e *obs.Expo) {
		ps := s.pool.Stats()
		e.Gauge("eip_training_pool_workers", "Configured training pool workers.", float64(ps.Workers))
		e.Gauge("eip_training_pool_active", "Training pool workers running work.", float64(ps.Active))
		e.Gauge("eip_training_pool_queued", "Admitted training requests waiting for a worker.", float64(ps.Queued))
		e.Gauge("eip_training_pool_queue_capacity", "Training pool queue depth beyond the workers.", float64(ps.QueueCapacity))
		e.Counter("eip_training_pool_rejected_total", "Training requests shed with 503 (queue full).", float64(ps.Rejected))

		pst := parallel.Snapshot()
		e.Counter("eip_parallel_jobs_total", "Dispatch calls into the training-pipeline scheduler.", float64(pst.Jobs))
		e.Counter("eip_parallel_tasks_total", "Work units (indices or shards) dispatched by the scheduler.", float64(pst.Tasks))
		e.Gauge("eip_parallel_workers_running", "Scheduler workers currently executing pipeline code.", float64(pst.Running))
	})

	// Go runtime: the process itself (goroutine count, heap, GC time) —
	// read fresh per scrape so the series cannot go stale.
	o.Collect(func(e *obs.Expo) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		e.Gauge("eip_go_goroutines", "Goroutines currently live in the process.", float64(runtime.NumGoroutine()))
		e.Gauge("eip_go_heap_bytes", "Heap bytes currently allocated and in use.", float64(ms.HeapAlloc))
		e.Counter("eip_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
	})

	// Flight recorder: tail-sampling keep/discard counters and retention.
	o.Collect(func(e *obs.Expo) {
		st := s.recorder.Stats()
		e.Counter("eip_trace_kept_total", "Completed traces retained by the flight recorder.", float64(st.Kept))
		e.Counter("eip_trace_discarded_total", "Completed traces discarded by tail sampling.", float64(st.Discarded))
		e.Gauge("eip_trace_retained", "Traces currently held in the flight-recorder ring.", float64(st.Retained))
	})

	// Admission control: aggregate series only — tenant identity is an
	// unbounded key space, so no per-tenant labels; the shed-reason label
	// set is the four fixed gate names. Registered only when admission is
	// on, so a default server's exposition is unchanged.
	if s.adm != nil {
		o.Collect(func(e *obs.Expo) {
			st := s.adm.Stats()
			e.Counter("eip_admission_admitted_total", "Requests admitted past the rate gate.", float64(st.Admitted))
			e.Counter("eip_admission_shed_total", "Requests shed, by admission gate.", float64(st.ShedRate), "reason", "rate")
			e.Counter("eip_admission_shed_total", "Requests shed, by admission gate.", float64(st.ShedBudget), "reason", "budget")
			e.Counter("eip_admission_shed_total", "Requests shed, by admission gate.", float64(st.ShedQueueFull), "reason", "queue_full")
			e.Counter("eip_admission_shed_total", "Requests shed, by admission gate.", float64(st.ShedDeadline), "reason", "deadline")
			e.Counter("eip_admission_gen_candidates_total", "Candidates charged against generation budgets.", float64(st.GenCharged))
			e.Counter("eip_admission_gen_refunded_total", "Charged candidates refunded by later-gate sheds.", float64(st.GenRefunded))
			e.Counter("eip_admission_evicted_tenants_total", "Idle tenants evicted by TTL sweeps.", float64(st.Evicted))
			e.Gauge("eip_admission_tenants", "Tenants currently holding limiter state.", float64(st.Tenants))
			e.Gauge("eip_admission_queue_depth", "Requests currently waiting for a tenant slot.", float64(st.QueueDepth))
			e.Gauge("eip_admission_slots_in_use", "Generation streams currently holding tenant slots.", float64(st.SlotsInUse))
		})
	}

	// Per-model ingest/drift/refresh series.
	o.Collect(s.refresher.collect)
}

// observeStage records one training-pipeline stage duration into the
// per-stage histogram. Matches the core.Options.OnStage signature.
func (s *Server) observeStage(stage string, d time.Duration) {
	if h := s.stageHist[stage]; h != nil {
		h.Observe(d.Seconds())
	}
}

// stageObserver builds the OnStage callback for one client-requested
// training run: per-stage histograms, retroactive child spans under the
// request's trace (OnStage fires after each stage with its duration),
// plus a Debug log record carrying the request and trace IDs so slow
// stages correlate with the request that paid for them.
func (s *Server) stageObserver(ctx context.Context, model string) func(stage string, d time.Duration) {
	id := requestID(ctx)
	tid := traceIDString(ctx)
	span := requestSpan(ctx)
	return func(stage string, d time.Duration) {
		s.observeStage(stage, d)
		span.RecordChild(stage, d)
		s.logger.Debug("training stage", "request_id", id, "trace_id", tid, "model", model, "stage", stage, "duration", d)
	}
}

// metricsBufPool reuses exposition render buffers across scrapes; a
// scrape's output for a few dozen families fits 16 KiB after the first
// few requests grow the buffer.
var metricsBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 1<<14)
		return &b
	},
}

// handleMetrics serves GET /metrics. The default exposition is the
// Prometheus text format v0.0.4; scrapers that ask for
// application/openmetrics-text via Accept get the OpenMetrics 1.0
// exposition instead, which additionally carries trace exemplars on the
// latency histogram buckets (`# {trace_id="..."}` — a parse error for
// v0.0.4 parsers, hence the negotiation). The route goes through the
// same instrumented middleware as everything else, so scrapes appear in
// the request metrics too.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	bp := metricsBufPool.Get().(*[]byte)
	var buf []byte
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		buf = s.obs.RenderOpenMetrics((*bp)[:0])
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
	} else {
		buf = s.obs.Render((*bp)[:0])
		w.Header().Set("Content-Type", obs.ContentType)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
	*bp = buf[:0]
	metricsBufPool.Put(bp)
}

// reqInfoKey carries the middleware's per-request identity — request ID,
// rendered trace ID, and root span — in the request context, for
// handlers that emit their own log records or open child spans.
type ctxKey int

const reqInfoKey ctxKey = 0

// reqInfo is immutable after the middleware installs it; the trace ID
// hex is rendered once here and shared by the response header, log
// records, error envelopes and exemplars.
type reqInfo struct {
	id      string
	traceID string
	span    *trace.Span
	// tenant is the admission identity (X-Tenant header or remote IP);
	// always set by the middleware, even with admission disabled, so log
	// records and spans carry it uniformly.
	tenant string
}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey, ri)
}

// requestID returns the request's ID, or "" outside the middleware.
func requestID(ctx context.Context) string {
	if ri, ok := ctx.Value(reqInfoKey).(*reqInfo); ok {
		return ri.id
	}
	return ""
}

// tenantFrom returns the request's tenant identity, or "" outside the
// middleware.
func tenantFrom(ctx context.Context) string {
	if ri, ok := ctx.Value(reqInfoKey).(*reqInfo); ok {
		return ri.tenant
	}
	return ""
}

// traceIDString returns the request's rendered trace ID, or "" outside
// the middleware (or when tracing is disabled).
func traceIDString(ctx context.Context) string {
	if ri, ok := ctx.Value(reqInfoKey).(*reqInfo); ok {
		return ri.traceID
	}
	return ""
}

// requestSpan returns the request's root span (nil-safe to use directly),
// preferring a span installed by trace.ContextWithSpan — subsystem code
// below the handlers parents children off the innermost span.
func requestSpan(ctx context.Context) *trace.Span {
	if sp := trace.SpanFromContext(ctx); sp != nil {
		return sp
	}
	if ri, ok := ctx.Value(reqInfoKey).(*reqInfo); ok {
		return ri.span
	}
	return nil
}
