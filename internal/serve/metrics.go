package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"entropyip/internal/obs"
)

// Metrics collects per-route request statistics on lock-free obs
// primitives. Each route's counters are registered once, when the route
// is installed, and the handler middleware holds a direct pointer — the
// request path does no map lookup and takes no lock, completing the
// zero-allocation serving plane's removal of per-request synchronization
// (the old implementation took a global mutex twice per request).
//
// The same counters feed two views: the Prometheus exposition on
// GET /metrics (through the obs.Registry the counters are registered in)
// and the /healthz JSON snapshot, whose shape predates the obs plane and
// stays backward compatible.
type Metrics struct {
	start    time.Time
	inFlight obs.Gauge
	panics   *obs.Counter

	reqSeconds, respBytes, reqsTotal, errsTotal string // family names, registered once

	o *obs.Registry

	// mu guards routes during registration only; the request path never
	// touches it.
	mu     sync.Mutex
	routes []*routeMetrics
}

// routeMetrics is one route's pre-registered counter set.
type routeMetrics struct {
	pattern  string
	requests *obs.Counter
	errors   *obs.Counter
	bytes    *obs.Counter
	latency  *obs.Histogram
	// nanos keeps the exact cumulative handler time the /healthz snapshot
	// reports; the histogram alone would quantize it.
	nanos atomic.Int64
}

// RouteSnapshot is the exported view of one route's counters.
type RouteSnapshot struct {
	// Requests is the number of completed requests.
	Requests int64 `json:"requests"`
	// Errors is the number of requests answered with a 4xx or 5xx status.
	Errors int64 `json:"errors"`
	// TotalMillis is the cumulative handler time in milliseconds.
	TotalMillis int64 `json:"total_millis"`
}

// MetricsSnapshot is a point-in-time view of all request metrics.
type MetricsSnapshot struct {
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// InFlight is the number of requests currently being handled.
	InFlight int `json:"in_flight"`
	// Panics is the number of handler panics recovered by the middleware.
	Panics int64 `json:"panics,omitempty"`
	// Routes maps "METHOD pattern" to that route's counters.
	Routes map[string]RouteSnapshot `json:"routes"`
}

func newMetrics(o *obs.Registry) *Metrics {
	m := &Metrics{
		start:      time.Now(),
		o:          o,
		reqsTotal:  "eip_http_requests_total",
		errsTotal:  "eip_http_errors_total",
		respBytes:  "eip_http_response_bytes_total",
		reqSeconds: "eip_http_request_seconds",
	}
	o.GaugeFunc("eip_http_in_flight", "Requests currently being handled.",
		func() float64 { return float64(m.inFlight.Value()) })
	m.panics = o.Counter("eip_http_panics_total", "Handler panics recovered by the middleware.")
	o.GaugeFunc("eip_uptime_seconds", "Seconds since the server was created.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// route registers one route's counter set. Called once per route at
// server construction.
func (m *Metrics) route(pattern string) *routeMetrics {
	rm := &routeMetrics{
		pattern:  pattern,
		requests: m.o.Counter(m.reqsTotal, "Completed requests by route.", "route", pattern),
		errors:   m.o.Counter(m.errsTotal, "Requests answered with a 4xx or 5xx status.", "route", pattern),
		bytes:    m.o.Counter(m.respBytes, "Response body bytes written.", "route", pattern),
		latency:  m.o.Histogram(m.reqSeconds, "Request handling latency.", nil, "route", pattern),
	}
	m.mu.Lock()
	m.routes = append(m.routes, rm)
	m.mu.Unlock()
	return rm
}

func (m *Metrics) begin() { m.inFlight.Inc() }

func (m *Metrics) end(rm *routeMetrics, status int, dur time.Duration, bytes int64, traceID string) {
	m.inFlight.Dec()
	rm.requests.Inc()
	if status >= 400 {
		rm.errors.Inc()
	}
	// The trace ID becomes the bucket's exemplar in the OpenMetrics
	// exposition, linking a slow latency observation to its flight-recorder
	// trace; the text v0.0.4 exposition ignores it.
	rm.latency.ObserveExemplar(dur.Seconds(), traceID)
	rm.nanos.Add(int64(dur))
	if bytes > 0 {
		rm.bytes.Add(uint64(bytes))
	}
}

// panicked records one recovered handler panic.
func (m *Metrics) panicked() { m.panics.Inc() }

// Snapshot returns the current counters. Like the pre-obs implementation
// it includes only routes that have completed at least one request, so
// the /healthz JSON is unchanged for existing consumers.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	routes := m.routes
	m.mu.Unlock()
	out := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      int(m.inFlight.Value()),
		Panics:        int64(m.panics.Value()),
		Routes:        make(map[string]RouteSnapshot, len(routes)),
	}
	for _, rm := range routes {
		reqs := int64(rm.requests.Value())
		if reqs == 0 {
			continue
		}
		out.Routes[rm.pattern] = RouteSnapshot{
			Requests:    reqs,
			Errors:      int64(rm.errors.Value()),
			TotalMillis: rm.nanos.Load() / int64(time.Millisecond),
		}
	}
	return out
}
