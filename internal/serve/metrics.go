package serve

import (
	"sync"
	"time"
)

// Metrics collects basic per-route request statistics: counts, errors and
// cumulative handler time. It is safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	start    time.Time
	inFlight int
	routes   map[string]*routeStats
}

type routeStats struct {
	requests int64
	errors   int64
	total    time.Duration
}

// RouteSnapshot is the exported view of one route's counters.
type RouteSnapshot struct {
	// Requests is the number of completed requests.
	Requests int64 `json:"requests"`
	// Errors is the number of requests answered with a 4xx or 5xx status.
	Errors int64 `json:"errors"`
	// TotalMillis is the cumulative handler time in milliseconds.
	TotalMillis int64 `json:"total_millis"`
}

// MetricsSnapshot is a point-in-time view of all request metrics.
type MetricsSnapshot struct {
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// InFlight is the number of requests currently being handled.
	InFlight int `json:"in_flight"`
	// Routes maps "METHOD pattern" to that route's counters.
	Routes map[string]RouteSnapshot `json:"routes"`
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now(), routes: make(map[string]*routeStats)}
}

func (m *Metrics) begin() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

func (m *Metrics) end(route string, status int, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	rs := m.routes[route]
	if rs == nil {
		rs = &routeStats{}
		m.routes[route] = rs
	}
	rs.requests++
	if status >= 400 {
		rs.errors++
	}
	rs.total += dur
}

// Snapshot returns the current counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight,
		Routes:        make(map[string]RouteSnapshot, len(m.routes)),
	}
	for route, rs := range m.routes {
		out.Routes[route] = RouteSnapshot{
			Requests:    rs.requests,
			Errors:      rs.errors,
			TotalMillis: rs.total.Milliseconds(),
		}
	}
	return out
}
