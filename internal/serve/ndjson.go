package serve

import (
	"sync"
	"unicode/utf8"
)

// The NDJSON stream of POST /v1/models/{name}/generate used to go through
// encoding/json once per line — an Encoder allocation-and-reflection round
// trip per candidate, dominating the serving cost of the compiled sampler.
// The stream's line shapes are fixed ({"addr":"..."}, {"prefix":"..."},
// {"error":"..."}), so the handler now builds each line in a pooled,
// reusable byte buffer with append-style formatting. The only subtle part
// is string escaping, which appendJSONString keeps byte-identical to
// encoding/json (HTML escaping included) so clients see exactly the bytes
// the old encoder produced.

// lineBuf is a pooled NDJSON line buffer. The pool stores pointers so
// Put does not allocate a fresh slice header per release.
type lineBuf struct {
	b []byte
}

var lineBufPool = sync.Pool{
	New: func() interface{} { return &lineBuf{b: make([]byte, 0, 256)} },
}

// getLineBuf borrows a line buffer from the pool. Callers must return it
// with putLineBuf once no Write of its contents is in flight; retaining
// the buffer (or slices of it) after put is a use-after-reuse bug.
func getLineBuf() *lineBuf { return lineBufPool.Get().(*lineBuf) }

func putLineBuf(lb *lineBuf) {
	// Oversized one-off lines (a huge error message) are dropped instead
	// of pinning their backing array in the pool forever.
	if cap(lb.b) <= 1<<16 {
		lb.b = lb.b[:0]
		lineBufPool.Put(lb)
	}
}

// jsonSafe marks the bytes encoding/json emits verbatim inside a string
// with its default HTML escaping on: printable ASCII minus '"', '\\' and
// the HTML-sensitive '<', '>', '&'.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		switch c {
		case '"', '\\', '<', '>', '&':
		default:
			safe[c] = true
		}
	}
	return
}()

const hexLower = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal (quotes included),
// escaping byte-identically to encoding/json with its default HTML
// escaping: \" \\ \n \r \t, \u00XX for other control and HTML-sensitive
// characters, \u2028/\u2029 for the JS line separators, and the U+FFFD
// replacement for invalid UTF-8. TestAppendJSONStringMatchesEncodingJSON
// pins the equivalence.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexLower[b>>4], hexLower[b&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case c == utf8.RuneError && size == 1:
			// encoding/json's HTML-escaping encoder writes the escape
			// sequence, not the literal replacement character.
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
		case c == '\u2028' || c == '\u2029':
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexLower[c&0xf])
			i += size
			start = i
		default:
			i += size
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendErrorLine formats the {"error":"..."} trailer of a mid-stream
// generation failure, byte-identical to
// json.Encoder.Encode(GenerateItem{Error: msg, TraceID: traceID}) —
// including omitempty collapsing an all-empty line to "{}". The trace ID
// rides along so a client holding only the truncated stream can pull the
// matching flight-recorder trace and server logs.
func appendErrorLine(dst []byte, msg, traceID string) []byte {
	if msg == "" && traceID == "" {
		return append(dst, '{', '}', '\n')
	}
	dst = append(dst, '{')
	if msg != "" {
		dst = append(dst, `"error":`...)
		dst = appendJSONString(dst, msg)
		if traceID != "" {
			dst = append(dst, ',')
		}
	}
	if traceID != "" {
		dst = append(dst, `"trace_id":`...)
		dst = appendJSONString(dst, traceID)
	}
	return append(dst, '}', '\n')
}
