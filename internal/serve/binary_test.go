package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"entropyip/internal/ip6"
	"entropyip/internal/wire"
)

// doHeaders issues a request with extra headers (Accept, Content-Type)
// and an optional raw body.
func doHeaders(t *testing.T, s *Server, method, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// jsonBody marshals a request body for doHeaders.
func jsonBody(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNegotiateGenerateEncoding(t *testing.T) {
	cases := []struct {
		accept string
		enc    encoding
		reject bool
	}{
		{"", encNDJSON, false},
		{"*/*", encNDJSON, false},
		{"application/x-ndjson", encNDJSON, false},
		{"application/json", encNDJSON, false},
		{"application/*", encNDJSON, false},
		{wire.ContentType, encBinary, false},
		{"Application/X-Entropyip-Addrs", encBinary, false},
		{"application/x-ndjson, " + wire.ContentType, encBinary, false},
		{wire.ContentType + ";q=0.5, application/x-ndjson", encBinary, false},
		{"text/html, */*", encNDJSON, false},
		{"text/html", 0, true},
		{"application/xml;q=1.0", 0, true},
	}
	for _, tc := range cases {
		r := httptest.NewRequest("POST", "/v1/models/web/generate", nil)
		if tc.accept != "" {
			r.Header.Set("Accept", tc.accept)
		}
		enc, err := negotiateGenerateEncoding(r)
		if tc.reject {
			if err == nil {
				t.Errorf("Accept %q: expected rejection, got %v", tc.accept, enc)
			}
			continue
		}
		if err != nil || enc != tc.enc {
			t.Errorf("Accept %q: enc = %v, err = %v; want %v", tc.accept, enc, err, tc.enc)
		}
	}
}

func TestGenerateNotAcceptable(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	w := doHeaders(t, s, "POST", "/v1/models/web/generate",
		jsonBody(t, GenerateRequest{Count: 5}), map[string]string{"Accept": "text/csv"})
	if w.Code != http.StatusNotAcceptable {
		t.Fatalf("status = %d, want 406 (%s)", w.Code, w.Body.String())
	}
	var er errorResponse
	decode(t, w, &er)
	if er.Error.Code != CodeNotAcceptable {
		t.Errorf("code = %q, want %q", er.Error.Code, CodeNotAcceptable)
	}
}

// ndjsonAddrs parses a single-stream NDJSON generate body into its
// address strings, failing on any error trailer.
func ndjsonAddrs(t *testing.T, body *bytes.Buffer, prefixes bool) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(bytes.NewReader(body.Bytes()))
	for sc.Scan() {
		var item GenerateItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if item.Error != "" {
			t.Fatalf("error trailer: %s", item.Error)
		}
		if prefixes {
			out = append(out, item.Prefix)
		} else {
			out = append(out, item.Addr)
		}
	}
	return out
}

// binaryAddrs decodes a binary generate body, returning per-stream
// address/prefix strings and per-stream seeds (Seed frames; stream 0's
// header seed when absent). Error frames fail the test.
func binaryAddrs(t *testing.T, body *bytes.Buffer) (wire.Header, map[int][]string, map[int]int64, map[int]bool) {
	t.Helper()
	rd, err := wire.NewReader(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatalf("reading binary header: %v", err)
	}
	hdr := rd.Header()
	byStream := map[int][]string{}
	seeds := map[int]int64{}
	ended := map[int]bool{}
	for {
		f, err := rd.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("decoding frame: %v", err)
		}
		switch f.Kind {
		case wire.KindAddrs:
			for i := 0; i < f.Count; i++ {
				byStream[f.Stream] = append(byStream[f.Stream], f.Addr(i).String())
			}
		case wire.KindPrefixes:
			for i := 0; i < f.Count; i++ {
				byStream[f.Stream] = append(byStream[f.Stream], f.Prefix(i).String())
			}
		case wire.KindSeed:
			seeds[f.Stream] = f.Seed()
		case wire.KindEnd:
			ended[f.Stream] = true
		case wire.KindError:
			t.Fatalf("stream %d error frame: %s", f.Stream, f.Message())
		}
	}
	return hdr, byStream, seeds, ended
}

// TestGenerateBinaryMatchesNDJSON is the cross-encoding equivalence
// gate of PR 7: the same model, seed and options must yield the
// identical candidate sequence through NDJSON text and binary framing,
// at Workers 1 and 4 (ordered generation is deterministic across worker
// counts, so all four responses agree).
func TestGenerateBinaryMatchesNDJSON(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	for _, prefixes := range []bool{false, true} {
		var want []string
		for _, workers := range []int{1, 4} {
			req := GenerateRequest{Count: 500, Seed: seedPtr(42), Workers: workers, Prefixes: prefixes}
			wText := do(t, s, "POST", "/v1/models/web/generate", req)
			if wText.Code != http.StatusOK {
				t.Fatalf("ndjson status = %d: %s", wText.Code, wText.Body.String())
			}
			text := ndjsonAddrs(t, wText.Body, prefixes)

			wBin := doHeaders(t, s, "POST", "/v1/models/web/generate",
				jsonBody(t, req), map[string]string{"Accept": wire.ContentType})
			if wBin.Code != http.StatusOK {
				t.Fatalf("binary status = %d: %s", wBin.Code, wBin.Body.String())
			}
			if ct := wBin.Header().Get("Content-Type"); ct != wire.ContentType {
				t.Fatalf("binary Content-Type = %q", ct)
			}
			hdr, byStream, _, ended := binaryAddrs(t, wBin.Body)
			if hdr.Prefixes() != prefixes || hdr.Batch() || hdr.Streams != 1 || hdr.Seed != 42 {
				t.Fatalf("binary header = %+v (prefixes=%v)", hdr, prefixes)
			}
			if !ended[0] {
				t.Fatal("missing End frame")
			}
			bin := byStream[0]

			if len(text) == 0 || len(text) != len(bin) {
				t.Fatalf("prefixes=%v workers=%d: %d text vs %d binary candidates",
					prefixes, workers, len(text), len(bin))
			}
			for i := range text {
				if text[i] != bin[i] {
					t.Fatalf("prefixes=%v workers=%d: candidate %d differs: %q (text) vs %q (binary)",
						prefixes, workers, i, text[i], bin[i])
				}
			}
			if want == nil {
				want = text
			} else if fmt.Sprint(want) != fmt.Sprint(text) {
				t.Fatalf("prefixes=%v: sequence differs across worker counts", prefixes)
			}
		}
	}
}

// TestGenerateBinaryHeaders pins the response metadata headers on the
// binary encoding: X-Seed echo, X-Encoding, X-Model-Version.
func TestGenerateBinaryHeaders(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	w := doHeaders(t, s, "POST", "/v1/models/web/generate",
		jsonBody(t, GenerateRequest{Count: 3, Seed: seedPtr(7)}),
		map[string]string{"Accept": wire.ContentType})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Seed"); got != "7" {
		t.Errorf("X-Seed = %q, want 7", got)
	}
	if got := w.Header().Get("X-Encoding"); got != "binary" {
		t.Errorf("X-Encoding = %q, want binary", got)
	}
	if got := w.Header().Get("X-Model-Version"); got != "1" {
		t.Errorf("X-Model-Version = %q, want 1", got)
	}
}

// TestGenerateBinaryEarlyErrorEnvelope checks a request that fails
// before any frame is flushed (unknown evidence segment) still answers
// with the JSON error envelope, not a broken binary body.
func TestGenerateBinaryEarlyErrorEnvelope(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	w := doHeaders(t, s, "POST", "/v1/models/web/generate",
		jsonBody(t, GenerateRequest{Count: 3, Seed: seedPtr(1), Evidence: map[string]string{"NOPE": "X1"}}),
		map[string]string{"Accept": wire.ContentType})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", w.Code, w.Body.String())
	}
	var er errorResponse
	decode(t, w, &er)
	if er.Error.Code != CodeInvalidRequest || er.Error.Message == "" {
		t.Errorf("envelope = %+v", er.Error)
	}
}

// TestGenerateBatchBinary drives a 3-stream batch request over the
// binary encoding and checks each demultiplexed stream is byte-for-byte
// the single-stream response with the same seed, that Seed frames and
// the X-Seed header agree, and that every stream Ends.
func TestGenerateBatchBinary(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	req := GenerateRequest{Streams: []GenerateStreamSpec{
		{Count: 40, Seed: seedPtr(101)},
		{Count: 40, Seed: seedPtr(202)},
		{Count: 40, Seed: seedPtr(303)},
	}}
	w := doHeaders(t, s, "POST", "/v1/models/web/generate",
		jsonBody(t, req), map[string]string{"Accept": wire.ContentType})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Seed"); got != "101,202,303" {
		t.Errorf("X-Seed = %q, want 101,202,303", got)
	}
	hdr, byStream, seeds, ended := binaryAddrs(t, w.Body)
	if !hdr.Batch() || hdr.Streams != 3 || hdr.Seed != 101 {
		t.Fatalf("header = %+v", hdr)
	}
	wantSeeds := []int64{101, 202, 303}
	for i, want := range wantSeeds {
		if seeds[i] != want {
			t.Errorf("stream %d seed frame = %d, want %d", i, seeds[i], want)
		}
		if !ended[i] {
			t.Errorf("stream %d missing End frame", i)
		}
		single := do(t, s, "POST", "/v1/models/web/generate",
			GenerateRequest{Count: 40, Seed: seedPtr(want)})
		if single.Code != http.StatusOK {
			t.Fatalf("single status = %d", single.Code)
		}
		ref := ndjsonAddrs(t, single.Body, false)
		if fmt.Sprint(byStream[i]) != fmt.Sprint(ref) {
			t.Errorf("stream %d differs from single-stream generation with seed %d", i, want)
		}
	}
}

// TestGenerateBatchNDJSON drives a batch request in NDJSON and checks
// the {"stream":i,...} line protocol: per-stream order matches the
// single-stream response, and each stream closes with a done line.
func TestGenerateBatchNDJSON(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	req := GenerateRequest{Streams: []GenerateStreamSpec{
		{Count: 30, Seed: seedPtr(11)},
		{Count: 30, Seed: seedPtr(22)},
	}}
	w := do(t, s, "POST", "/v1/models/web/generate", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Encoding"); got != "ndjson" {
		t.Errorf("X-Encoding = %q", got)
	}
	byStream := map[int][]string{}
	done := map[int]bool{}
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		var item GenerateItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if item.Stream == nil {
			t.Fatalf("batch line missing stream index: %q", sc.Text())
		}
		switch {
		case item.Error != "":
			t.Fatalf("stream %d error: %s", *item.Stream, item.Error)
		case item.Done:
			done[*item.Stream] = true
		default:
			byStream[*item.Stream] = append(byStream[*item.Stream], item.Addr)
		}
	}
	for i, seed := range []int64{11, 22} {
		if !done[i] {
			t.Errorf("stream %d missing done line", i)
		}
		single := do(t, s, "POST", "/v1/models/web/generate",
			GenerateRequest{Count: 30, Seed: seedPtr(seed)})
		ref := ndjsonAddrs(t, single.Body, false)
		if fmt.Sprint(byStream[i]) != fmt.Sprint(ref) {
			t.Errorf("stream %d differs from single-stream generation with seed %d", i, seed)
		}
	}
}

// TestGenerateBatchValidation pins the batch-request validation errors.
func TestGenerateBatchValidation(t *testing.T) {
	s, reg := newTestServer(t, Options{MaxGenerateCount: 100})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	tooMany := make([]GenerateStreamSpec, MaxGenerateStreams+1)
	for i := range tooMany {
		tooMany[i] = GenerateStreamSpec{Count: 1}
	}
	cases := []struct {
		name string
		req  GenerateRequest
		frag string
	}{
		{"mixed top-level and streams",
			GenerateRequest{Count: 5, Streams: []GenerateStreamSpec{{Count: 5}}},
			"mutually exclusive"},
		{"zero stream count",
			GenerateRequest{Streams: []GenerateStreamSpec{{Count: 0}}},
			"streams[0].count"},
		{"total over limit",
			GenerateRequest{Streams: []GenerateStreamSpec{{Count: 60}, {Count: 60}}},
			"total count"},
		{"too many streams",
			GenerateRequest{Streams: tooMany},
			"streams exceed limit"},
	}
	for _, tc := range cases {
		w := do(t, s, "POST", "/v1/models/web/generate", tc.req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, w.Code)
			continue
		}
		var er errorResponse
		decode(t, w, &er)
		if !strings.Contains(er.Error.Message, tc.frag) {
			t.Errorf("%s: message %q missing %q", tc.name, er.Error.Message, tc.frag)
		}
	}
}

// buildObserveBody frames addrs as a binary /observe body.
func buildObserveBody(t *testing.T, addrs []ip6.Addr) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(wire.AppendHeader(nil, wire.Header{Streams: 1}))
	ww := wire.NewWriter(&buf, 0, false, 0)
	for _, a := range addrs {
		if err := ww.AddAddr(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := ww.End(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObserveBinary posts a framed binary body and checks it lands in
// the model's window exactly like the text path.
func TestObserveBinary(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	addrs := testAddrs(5000, 3)
	w := doHeaders(t, s, "POST", "/v1/models/web/observe",
		buildObserveBody(t, addrs), map[string]string{"Content-Type": wire.ContentType})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Encoding"); got != "binary" {
		t.Errorf("X-Encoding = %q", got)
	}
	var resp ObserveResponse
	decode(t, w, &resp)
	if resp.Accepted != len(addrs) {
		t.Errorf("accepted = %d, want %d", resp.Accepted, len(addrs))
	}
	if resp.Invalid != 0 {
		t.Errorf("invalid = %d on a binary body", resp.Invalid)
	}
}

// TestObserveBinaryRejects pins the 400s of the binary observe path:
// text mislabeled as binary, prefix streams, and error frames.
func TestObserveBinaryRejects(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	prefixHdr := wire.AppendHeader(nil, wire.Header{Flags: wire.FlagPrefixes, Streams: 1})
	var errBody bytes.Buffer
	errBody.Write(wire.AppendHeader(nil, wire.Header{Streams: 1}))
	if err := wire.NewWriter(&errBody, 0, false, 0).Error("boom"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body []byte
		frag string
	}{
		{"ndjson mislabeled", []byte("{\"addr\":\"2001:db8::1\"}\n"), "bad magic"},
		{"prefix stream", prefixHdr, "prefix streams"},
		{"error frame", errBody.Bytes(), "unexpected frame kind"},
		{"truncated frame", buildObserveBody(t, testAddrs(10, 1))[:20], "malformed frame"},
	}
	for _, tc := range cases {
		w := doHeaders(t, s, "POST", "/v1/models/web/observe",
			tc.body, map[string]string{"Content-Type": wire.ContentType})
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
			continue
		}
		var er errorResponse
		decode(t, w, &er)
		if !strings.Contains(er.Error.Message, tc.frag) {
			t.Errorf("%s: message %q missing %q", tc.name, er.Error.Message, tc.frag)
		}
	}
}

// TestObserveBinaryTooLarge checks the body cap maps to 413 on the
// binary path too.
func TestObserveBinaryTooLarge(t *testing.T) {
	s, reg := newTestServer(t, Options{MaxBodyBytes: 256})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	w := doHeaders(t, s, "POST", "/v1/models/web/observe",
		buildObserveBody(t, testAddrs(4096, 1)), map[string]string{"Content-Type": wire.ContentType})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", w.Code, w.Body.String())
	}
	var er errorResponse
	decode(t, w, &er)
	if er.Error.Code != CodePayloadTooLarge {
		t.Errorf("code = %q, want %q", er.Error.Code, CodePayloadTooLarge)
	}
}

// TestEncodingCounters checks the per-encoding request counters appear
// in the exposition with the route/encoding labels.
func TestEncodingCounters(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if w := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: 2, Seed: seedPtr(1)}); w.Code != 200 {
		t.Fatalf("generate ndjson: %d", w.Code)
	}
	if w := doHeaders(t, s, "POST", "/v1/models/web/generate",
		jsonBody(t, GenerateRequest{Count: 2, Seed: seedPtr(1)}),
		map[string]string{"Accept": wire.ContentType}); w.Code != 200 {
		t.Fatalf("generate binary: %d", w.Code)
	}
	if w := doHeaders(t, s, "POST", "/v1/models/web/observe",
		buildObserveBody(t, testAddrs(4, 1)), map[string]string{"Content-Type": wire.ContentType}); w.Code != 200 {
		t.Fatalf("observe binary: %d", w.Code)
	}
	body := scrape(t, s)
	for _, want := range []string{
		`eip_encoding_requests_total{route="generate",encoding="ndjson"} 1`,
		`eip_encoding_requests_total{route="generate",encoding="binary"} 1`,
		`eip_encoding_requests_total{route="observe",encoding="binary"} 1`,
		`eip_encoding_requests_total{route="observe",encoding="ndjson"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
