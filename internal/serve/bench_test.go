package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/ingest"
	"entropyip/internal/ip6"
	"entropyip/internal/registry"
	"entropyip/internal/wire"
)

// BenchmarkGenerateNDJSON is the CI-gated per-line cost of the generate
// stream's formatting path: one candidate address formatted into the
// pooled line buffer and written through a bufio.Writer, exactly as
// handleGenerate does per candidate. Steady state must be 0 allocs/op
// (gated strictly by scripts/check_bench.sh) — this is the "0 amortized
// allocs/address" acceptance number for the streaming path.
func BenchmarkGenerateNDJSON(b *testing.B) {
	addrs := testAddrs(4096, 1)
	bw := bufio.NewWriter(io.Discard)
	lb := getLineBuf()
	defer putLineBuf(lb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		lb.b = append(lb.b[:0], `{"addr":"`...)
		lb.b = a.AppendString(lb.b)
		lb.b = append(lb.b, '"', '}', '\n')
		if _, err := bw.Write(lb.b); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateNDJSONReference is the old per-line path — one
// json.Encoder round trip per candidate — kept as the informational
// baseline BenchmarkGenerateNDJSON's win is quoted against in DESIGN.md.
func BenchmarkGenerateNDJSONReference(b *testing.B) {
	addrs := testAddrs(4096, 1)
	bw := bufio.NewWriter(io.Discard)
	enc := json.NewEncoder(bw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(GenerateItem{Addr: addrs[i%len(addrs)].String()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateBinary100k is the CI-gated frame-encode cost of the
// binary generate path: 100k candidate addresses per op appended through
// a reused wire.Writer into a bufio.Writer, exactly as generateBinary's
// producer does per candidate (header write, data frames, End frame).
// Steady state must be 0 allocs/op, and scripts/check_bench.sh compares
// its per-candidate cost against BenchmarkGenerateNDJSON in the same run
// — the binary encoding must stay at least 2x the NDJSON throughput.
func BenchmarkGenerateBinary100k(b *testing.B) {
	const perOp = 100_000
	addrs := testAddrs(4096, 1)
	bw := bufio.NewWriter(io.Discard)
	hdr := wire.AppendHeader(nil, wire.Header{Streams: 1, Seed: 1})
	ww := wire.NewWriter(bw, 0, false, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bw.Write(hdr); err != nil {
			b.Fatal(err)
		}
		ww.Reset(bw, 0, false, 0)
		for j := 0; j < perOp; j++ {
			if err := ww.AddAddr(addrs[j%len(addrs)]); err != nil {
				b.Fatal(err)
			}
		}
		if err := ww.End(); err != nil {
			b.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perOp*b.N)/b.Elapsed().Seconds(), "addrs/s")
}

// BenchmarkObserveBinary10k is the CI-gated frame-decode cost of the
// binary observe path: a 10k-address binary body per op through a
// reused wire.Reader, with every decoded batch pushed into a live
// ingest.Buffer — observeBinary's loop without the HTTP envelope.
// Steady state must be 0 allocs/op.
func BenchmarkObserveBinary10k(b *testing.B) {
	const perOp = 10_000
	addrs := testAddrs(perOp, 2)
	var body bytes.Buffer
	body.Write(wire.AppendHeader(nil, wire.Header{Streams: 1}))
	ww := wire.NewWriter(&body, 0, false, 0)
	for _, a := range addrs {
		if err := ww.AddAddr(a); err != nil {
			b.Fatal(err)
		}
	}
	if err := ww.End(); err != nil {
		b.Fatal(err)
	}
	payload := body.Bytes()
	buf := ingest.New(ingest.Config{WindowSize: 16384})
	// Warm the window so the benchmark measures steady-state overwrite.
	buf.AddBatch(addrs)
	batch := make([]ip6.Addr, 0, observeBatchSize)
	var br bytes.Reader
	br.Reset(payload)
	rd, err := wire.NewReader(&br)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(payload)
		if err := rd.Reset(&br); err != nil {
			b.Fatal(err)
		}
		for {
			f, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			switch f.Kind {
			case wire.KindAddrs:
				for j := 0; j < f.Count; j++ {
					batch = append(batch, f.Addr(j))
					if len(batch) >= observeBatchSize {
						buf.AddBatch(batch)
						batch = batch[:0]
					}
				}
			case wire.KindEnd:
			default:
				b.Fatalf("unexpected frame kind 0x%02x", f.Kind)
			}
		}
	}
	b.ReportMetric(float64(perOp*b.N)/b.Elapsed().Seconds(), "addrs/s")
}

// BenchmarkObserveIngest is the CI-gated per-address cost of the observe
// ingest path: one bare NDJSON line trimmed, parsed from its byte slice
// and batched, with every full batch pushed into a live ingest.Buffer —
// the handler's loop without the HTTP envelope. Steady state must be 0
// allocs/op.
func BenchmarkObserveIngest(b *testing.B) {
	addrs := testAddrs(4096, 2)
	lines := make([][]byte, len(addrs))
	for i, a := range addrs {
		lines[i] = a.AppendString(make([]byte, 0, 64))
	}
	buf := ingest.New(ingest.Config{WindowSize: 16384})
	// Warm the window so the benchmark measures steady-state overwrite,
	// not initial ring growth.
	buf.AddBatch(addrs)
	batch := make([]ip6.Addr, 0, observeBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := bytes.TrimSpace(lines[i%len(lines)])
		a, ok, err := parseObserveLine(line)
		if err != nil || !ok {
			b.Fatalf("line %q: ok=%v err=%v", line, ok, err)
		}
		batch = append(batch, a)
		if len(batch) >= observeBatchSize {
			buf.AddBatch(batch)
			batch = batch[:0]
		}
	}
}

// BenchmarkObserveHTTP is the end-to-end observe request: a 10k-address
// NDJSON body through the live handler (registry lookup, scanner, pooled
// batches, ingest buffer, drift bookkeeping). Informational: per-address
// cost is ns/op divided by 10_000; allocs/op is whole-request.
func BenchmarkObserveHTTP(b *testing.B) {
	s, reg := benchServer(b)
	if _, err := reg.Put("bench", benchModel(b)); err != nil {
		b.Fatal(err)
	}
	var body bytes.Buffer
	for _, a := range testAddrs(10_000, 3) {
		body.Write(a.AppendString(nil))
		body.WriteByte('\n')
	}
	payload := body.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/models/bench/observe", bytes.NewReader(payload))
		w := &discardResponseWriter{header: make(http.Header)}
		s.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status = %d", w.status)
		}
	}
}

// BenchmarkGenerateHTTP is the end-to-end generate request: 10k
// candidates streamed as NDJSON through the live handler into a discard
// writer. Informational companion to BenchmarkGenerateNDJSON.
func BenchmarkGenerateHTTP(b *testing.B) {
	s, reg := benchServer(b)
	if _, err := reg.Put("bench", benchModel(b)); err != nil {
		b.Fatal(err)
	}
	payload := []byte(`{"count": 10000, "seed": 1}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/models/bench/generate", bytes.NewReader(payload))
		w := &discardResponseWriter{header: make(http.Header)}
		s.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status = %d", w.status)
		}
	}
}

// parseObserveLine is the handler's bare-line fast path — the same
// parser the observe loop's default case calls.
func parseObserveLine(line []byte) (ip6.Addr, bool, error) {
	return dataset.ParseLineBytes(line)
}

func benchServer(b *testing.B) (*Server, *registry.Registry) {
	b.Helper()
	reg, err := registry.Open(b.TempDir(), 8)
	if err != nil {
		b.Fatal(err)
	}
	// Keep drift evaluation out of the ingest benchmark's inner loop: it
	// runs on its own cadence in production and is measured elsewhere.
	return New(reg, Options{Refresh: RefreshOptions{EvaluateEvery: 1 << 30}}), reg
}

func benchModel(b *testing.B) *core.Model {
	b.Helper()
	m, err := core.Build(testAddrs(1500, 1), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// discardResponseWriter is an http.ResponseWriter that throws the body
// away without accumulating it (httptest.ResponseRecorder would grow a
// buffer and dominate the allocation profile).
type discardResponseWriter struct {
	header http.Header
	status int
}

func (w *discardResponseWriter) Header() http.Header { return w.header }
func (w *discardResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(p), nil
}
func (w *discardResponseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
}
func (w *discardResponseWriter) Flush() {}
