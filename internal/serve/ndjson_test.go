package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"entropyip/internal/core"
	"entropyip/internal/ip6"
)

// escapeCorpus exercises every branch of encoding/json's string escaper:
// plain ASCII, the named escapes, generic control characters, the HTML
// set, multi-byte UTF-8, the JS line separators, and invalid UTF-8.
var escapeCorpus = []string{
	"",
	"plain ascii",
	"2001:db8::1", "::ffff:192.0.2.1/64",
	`quote " and backslash \`,
	"newline\n tab\t carriage\r",
	"control \x00\x01\x1f\x7f",
	"html <script>&amp;</script>",
	"unicode é 漢字 🎉",
	"line sep \u2028 and \u2029 end",
	"invalid \xff\xfe utf8",
	"truncated \xe2\x82 rune",
	"mixed <\n \xffé>",
}

// TestAppendJSONStringMatchesEncodingJSON pins the byte-identity contract
// of the hand-rolled escaper against the old encoding/json path, so
// replacing the per-line Encoder cannot change any stream byte.
func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	for _, s := range escapeCorpus {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONString(%q) = %q, encoding/json = %q", s, got, want)
		}
		// Appending after existing content must not disturb it.
		pre := appendJSONString([]byte("xy"), s)
		if !bytes.Equal(pre, append([]byte("xy"), want...)) {
			t.Errorf("appendJSONString onto prefix = %q, want xy+%q", pre, want)
		}
	}
}

// TestGenerateNDJSONLinesMatchEncodingJSON pins each stream line shape
// against the exact bytes the old json.Encoder produced for GenerateItem.
func TestGenerateNDJSONLinesMatchEncodingJSON(t *testing.T) {
	oldLine := func(item GenerateItem) []byte {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(item); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, a := range testAddrs(200, 7) {
		got := append([]byte(`{"addr":"`), a.AppendString(nil)...)
		got = append(got, '"', '}', '\n')
		if want := oldLine(GenerateItem{Addr: a.String()}); !bytes.Equal(got, want) {
			t.Fatalf("addr line = %q, old encoder = %q", got, want)
		}
		p := ip6.Prefix64(a)
		got = append([]byte(`{"prefix":"`), p.AppendString(nil)...)
		got = append(got, '"', '}', '\n')
		if want := oldLine(GenerateItem{Prefix: p.String()}); !bytes.Equal(got, want) {
			t.Fatalf("prefix line = %q, old encoder = %q", got, want)
		}
	}
	for _, msg := range escapeCorpus {
		got := appendErrorLine(nil, msg, "")
		if want := oldLine(GenerateItem{Error: msg}); !bytes.Equal(got, want) {
			t.Fatalf("error line for %q = %q, old encoder = %q", msg, got, want)
		}
		got = appendErrorLine(nil, msg, "4bf92f3577b34da6a3ce929d0e0e4736")
		want := oldLine(GenerateItem{Error: msg, TraceID: "4bf92f3577b34da6a3ce929d0e0e4736"})
		if !bytes.Equal(got, want) {
			t.Fatalf("traced error line for %q = %q, old encoder = %q", msg, got, want)
		}
	}
}

// TestGenerateStreamByteIdentity replays fixed-seed generate requests
// through the live handler and checks the body equals the stream the old
// per-line json.Encoder implementation produced for the same draws.
func TestGenerateStreamByteIdentity(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 3)
	if _, err := reg.Put("id", m); err != nil {
		t.Fatal(err)
	}
	for _, prefixes := range []bool{false, true} {
		w := do(t, s, "POST", "/v1/models/id/generate", GenerateRequest{
			Count: 500, Seed: seedPtr(11), Prefixes: prefixes,
		})
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d body %s", w.Code, w.Body.String())
		}

		// The old implementation: same generation options, but each line
		// through encoding/json.
		var want bytes.Buffer
		enc := json.NewEncoder(&want)
		opts := core.GenerateOptions{Count: 500, Seed: 11}
		var err error
		if prefixes {
			err = m.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
				if e := enc.Encode(GenerateItem{Prefix: p.String()}); e != nil {
					t.Fatal(e)
				}
				return true
			})
		} else {
			err = m.GenerateStream(opts, func(a ip6.Addr) bool {
				if e := enc.Encode(GenerateItem{Addr: a.String()}); e != nil {
					t.Fatal(e)
				}
				return true
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w.Body.Bytes(), want.Bytes()) {
			got, exp := w.Body.String(), want.String()
			for i := 0; i < len(got) && i < len(exp); i++ {
				if got[i] != exp[i] {
					t.Fatalf("prefixes=%v: stream diverges at byte %d: got %q, old path %q",
						prefixes, i, truncAt(got, i), truncAt(exp, i))
				}
			}
			t.Fatalf("prefixes=%v: stream length %d != old path %d", prefixes, len(got), len(exp))
		}
	}
}

// truncAt shows a short window of s around byte i for failure messages.
func truncAt(s string, i int) string {
	lo, hi := i-20, i+20
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
