package serve

import (
	"context"
	"net/http"
	"strconv"

	"entropyip/internal/core"
	"entropyip/internal/obs"
	"entropyip/internal/obs/trace"
	"entropyip/internal/registry"
)

// This file is the serving plane's tracing surface: the inbound
// X-Request-Id validation, the traced registry lookup the model-serving
// handlers share, and the GET /v1/debug/traces window into the flight
// recorder. The span machinery itself lives in internal/obs/trace; the
// middleware that opens each request's root span is in server.go.

// maxInboundRequestIDLen bounds an honored client request ID. Anything
// longer is replaced, not truncated — a truncated ID would correlate
// with nothing on the client's side.
const maxInboundRequestIDLen = 128

// inboundRequestID returns the request ID to use for r: the client's
// X-Request-Id when it is well-formed (1..128 bytes of [A-Za-z0-9._-]),
// otherwise a freshly minted one. Validation keeps hostile header values
// out of structured logs and error envelopes — an ID is quoted into
// both — while letting well-behaved clients stitch their own IDs through
// server logs.
func inboundRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > maxInboundRequestIDLen {
		return obs.NextRequestID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return obs.NextRequestID()
		}
	}
	return id
}

// getModel resolves a model version through the registry under a
// "registry.get" child span recording where the model came from (cache
// hit, disk load, or a coalesced wait on another goroutine's load), the
// disk decode time for misses, and any LRU evictions the install caused.
// The registry itself stays trace-free; it reports the outcome and the
// serving layer owns the span.
func (s *Server) getModel(ctx context.Context, name string, version int) (*core.Model, registry.Info, error) {
	span := requestSpan(ctx).StartChild("registry.get")
	defer span.Finish()
	span.SetAttr("model", name)
	m, info, out, err := s.reg.GetVersionOutcome(name, version)
	if err != nil {
		span.SetError(err.Error())
		return nil, registry.Info{}, err
	}
	span.SetAttr("outcome", out.Source.String())
	if out.Source == registry.LoadMiss {
		span.SetFloat("load_seconds", out.LoadSeconds)
	}
	if out.Evicted > 0 {
		span.SetInt("evicted", int64(out.Evicted))
	}
	span.SetInt("version", int64(info.Version))
	return m, info, nil
}

// DebugTracesResponse is the body of GET /v1/debug/traces: either a
// newest-first listing of retained traces, or — with ?trace_id= — one
// trace's full span tree.
type DebugTracesResponse struct {
	// Recorder reports the flight recorder's keep/discard counters and
	// ring occupancy.
	Recorder trace.RecorderStats `json:"recorder"`
	// Traces lists retained traces, newest first (listing form).
	Traces []trace.Summary `json:"traces,omitempty"`
	// Trace is the requested trace's span tree (?trace_id= form).
	Trace *trace.Tree `json:"trace,omitempty"`
}

// defaultTraceListLimit bounds a listing without an explicit ?limit.
const defaultTraceListLimit = 50

// handleDebugTraces serves GET /v1/debug/traces. Without parameters it
// lists retained traces newest first (?limit caps the listing); with
// ?trace_id=<32 hex> it returns that trace's span tree or 404 when the
// recorder no longer holds it (evicted or never kept).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	resp := DebugTracesResponse{Recorder: s.recorder.Stats()}
	if idHex := r.URL.Query().Get("trace_id"); idHex != "" {
		id, err := trace.ParseTraceID(idHex)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "invalid trace_id %q: %v", idHex, err)
			return
		}
		tree, ok := s.recorder.Get(id)
		if !ok {
			writeError(w, r, http.StatusNotFound,
				"trace %s not retained (discarded by tail sampling, or evicted from the ring)", idHex)
			return
		}
		resp.Trace = &tree
		writeJSON(w, http.StatusOK, resp)
		return
	}
	limit := defaultTraceListLimit
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			writeError(w, r, http.StatusBadRequest, "limit must be a positive integer, got %q", ls)
			return
		}
		limit = n
	}
	resp.Traces = s.recorder.List(limit)
	writeJSON(w, http.StatusOK, resp)
}
