// Package serve implements the HTTP API of the Entropy/IP model-serving
// daemon: the network face of the paper's interactive conditional
// probability browser (Figs. 1, 7, 9–10) and of candidate generation for
// scanning (§5.5–5.6), backed by a versioned model registry.
//
// API (all bodies JSON):
//
//	GET    /v1/models                     list models (latest version each)
//	GET    /v1/models/{name}              info + all versions of one model
//	GET    /v1/models/{name}/model        download the serialized model
//	PUT    /v1/models/{name}              upload a model, or train one from
//	                                      a posted address set (queued on a
//	                                      bounded worker pool)
//	DELETE /v1/models/{name}              delete all versions
//	POST   /v1/models/{name}/browse       conditional probability query
//	POST   /v1/models/{name}/generate     stream candidates (NDJSON, or the
//	                                      framed binary encoding of
//	                                      internal/wire via Accept; batch
//	                                      requests fan out multiple seeded
//	                                      streams in one response)
//	POST   /v1/models/{name}/observe      ingest observed addresses (NDJSON,
//	                                      or binary via Content-Type)
//	GET    /v1/models/{name}/drift        drift status of the model
//	GET    /healthz (alias /v1/healthz)   liveness + version + metrics
package serve

import (
	"bufio"
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"entropyip/internal/admission"
	"entropyip/internal/buildinfo"
	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/ip6"
	"entropyip/internal/obs"
	"entropyip/internal/obs/trace"
	"entropyip/internal/registry"
)

// Defaults used when Options fields are zero.
const (
	DefaultWorkers          = 2
	DefaultQueueDepth       = 8
	DefaultMaxBodyBytes     = 64 << 20 // 64 MiB of addresses or model JSON
	DefaultMaxGenerateCount = 10_000_000
	DefaultFlushEvery       = 512 // NDJSON lines between explicit flushes
)

// Options configures the HTTP server.
type Options struct {
	// Workers is the number of concurrent model-training workers; training
	// requests beyond this run after queued ones. Zero means
	// DefaultWorkers.
	Workers int
	// QueueDepth is how many training requests may wait for a worker
	// before the server answers 503. Zero means DefaultQueueDepth;
	// negative means no queueing beyond the workers themselves.
	QueueDepth int
	// MaxBodyBytes caps request body size. Zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxGenerateCount caps the count of one generate request. Zero means
	// DefaultMaxGenerateCount.
	MaxGenerateCount int
	// FlushEvery is the number of NDJSON lines written between explicit
	// flushes while streaming. Zero means DefaultFlushEvery.
	FlushEvery int
	// TrainWorkers is the default per-training-job parallelism (the
	// core.Options.Workers each server-side build runs with) when a
	// request does not ask for a specific value. Zero means all cores;
	// deployments running several concurrent trainings (Workers > 1)
	// typically set it to cores/Workers so jobs share the machine instead
	// of oversubscribing it. The trained model is identical either way.
	TrainWorkers int
	// GenerateWorkers is the default per-request generation parallelism
	// (core.GenerateOptions.Workers) when a generate request does not ask
	// for a specific value. Zero means all cores. The emitted candidate
	// stream is identical for any value (generation is deterministic
	// across worker counts unless the request sets unordered).
	GenerateWorkers int
	// Refresh configures the online ingest + drift detection + automatic
	// model refresh loop behind POST /v1/models/{name}/observe. The zero
	// value scores drift with default thresholds but does not retrain;
	// set Refresh.AutoRefresh to close the loop.
	Refresh RefreshOptions
	// Logger receives structured request logs (one record per completed
	// request, with a per-request ID) and subsystem events. Nil discards
	// everything — instrumented code never needs a nil check.
	Logger *slog.Logger
	// Trace configures the request-tracing flight recorder (ring capacity,
	// tail-sampling policy). The zero value enables tracing with defaults;
	// see trace.Policy.
	Trace trace.Policy
	// Admission configures per-tenant admission control on the /v1 model
	// routes: request-rate token buckets, generation budgets
	// (candidates/second), and per-tenant concurrency slots with bounded
	// queueing. The zero value disables every gate. Tenant identity is the
	// X-Tenant request header (validated), falling back to the remote IP.
	Admission admission.Config
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return DefaultWorkers
	}
	return o.Workers
}

func (o Options) queueDepth() int {
	if o.QueueDepth == 0 {
		return DefaultQueueDepth
	}
	if o.QueueDepth < 0 {
		return 0
	}
	return o.QueueDepth
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return o.MaxBodyBytes
}

func (o Options) maxGenerateCount() int {
	if o.MaxGenerateCount <= 0 {
		return DefaultMaxGenerateCount
	}
	return o.MaxGenerateCount
}

func (o Options) flushEvery() int {
	if o.FlushEvery <= 0 {
		return DefaultFlushEvery
	}
	return o.FlushEvery
}

// Server is the HTTP front end over a model registry. It implements
// http.Handler.
type Server struct {
	reg       *registry.Registry
	opts      Options
	pool      *Pool
	metrics   *Metrics
	refresher *Refresher
	mux       *http.ServeMux

	obs      *obs.Registry
	logger   *slog.Logger
	tracer   *trace.Tracer
	recorder *trace.Recorder
	// adm gates the /v1 model routes; nil (admission disabled) admits
	// everything at zero cost.
	adm *admission.Controller
	// draining is closed by Drain: in-flight generate streams stop after
	// their current candidate and emit an in-band shutdown error.
	draining  chan struct{}
	drainOnce sync.Once
	// patterns lists every mux pattern registered through handle, in
	// registration order; the OpenAPI consistency test diffs it against
	// the spec's route list.
	patterns []string
	// Serving-plane counters fed by the handlers (see serve/obs.go for
	// the scrape-time collectors over the other subsystems).
	candidates      *obs.Counter
	observeAccepted *obs.Counter
	observeInvalid  *obs.Counter
	// encRequests counts requests by route and negotiated encoding,
	// indexed [routeGenerate|routeObserve][encNDJSON|encBinary].
	encRequests [2][2]*obs.Counter
	// stageHist maps core.BuildStages names to the per-stage training
	// latency histograms; read-only after New.
	stageHist map[string]*obs.Histogram
}

// New returns a Server over the given registry.
func New(reg *registry.Registry, opts Options) *Server {
	pool := NewPool(opts.workers(), opts.queueDepth())
	refreshOpts := opts.Refresh
	if refreshOpts.TrainWorkers == 0 {
		refreshOpts.TrainWorkers = opts.TrainWorkers
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	o := obs.NewRegistry()
	recorder := trace.NewRecorder(opts.Trace)
	s := &Server{
		reg:       reg,
		opts:      opts,
		pool:      pool,
		metrics:   newMetrics(o),
		refresher: NewRefresher(reg, pool, refreshOpts),
		mux:       http.NewServeMux(),
		obs:       o,
		logger:    logger,
		tracer:    trace.NewTracer(recorder),
		recorder:  recorder,
		adm:       admission.New(opts.Admission),
		draining:  make(chan struct{}),
	}
	s.refresher.tracer = s.tracer
	s.registerObservability()
	// Model routes go through the admission rate gate; health, metrics and
	// introspection stay ungated so load balancers and operators observe
	// saturation instead of being shed by it.
	s.handleGated("GET /v1/models", s.handleList)
	s.handleGated("GET /v1/models/{name}", s.handleModelInfo)
	s.handleGated("GET /v1/models/{name}/model", s.handleDownload)
	s.handleGated("PUT /v1/models/{name}", s.handlePut)
	s.handleGated("DELETE /v1/models/{name}", s.handleDelete)
	s.handleGated("POST /v1/models/{name}/browse", s.handleBrowse)
	s.handleGated("POST /v1/models/{name}/generate", s.handleGenerate)
	s.handleGated("POST /v1/models/{name}/observe", s.handleObserve)
	s.handleGated("GET /v1/models/{name}/drift", s.handleDriftStatus)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /v1/healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/openapi.json", s.handleOpenAPI)
	s.handle("GET /v1/debug/traces", s.handleDebugTraces)
	return s
}

// Refresher exposes the ingest/drift/refresh loop (for the daemon's tail
// mode and for tests).
func (s *Server) Refresher() *Refresher { return s.refresher }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the server's request metrics (for the daemon's logs).
func (s *Server) Metrics() *Metrics { return s.metrics }

// handle registers an instrumented handler under a method+path pattern:
// per-route counters and latency histogram (with trace exemplars), a
// per-request ID (honored from a well-formed inbound X-Request-Id or
// minted, echoed in X-Request-Id, attached to the request context for
// handler logging), a root trace span (joining an inbound W3C
// traceparent or minting a fresh trace, its ID echoed in X-Trace-Id), a
// structured access-log record per completed request, and panic
// recovery — a panicking handler answers 500 (when the header is still
// unwritten), the in-flight gauge is decremented either way, and
// eip_http_panics_total increments instead of the gauge wedging.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.register(pattern, h, false)
}

// handleGated registers like handle but additionally runs the admission
// request-rate gate before the handler: shed requests answer 429 with
// Retry-After (still metered, traced and logged) without entering the
// handler.
func (s *Server) handleGated(pattern string, h http.HandlerFunc) {
	s.register(pattern, h, true)
}

func (s *Server) register(pattern string, h http.HandlerFunc, gated bool) {
	s.patterns = append(s.patterns, pattern)
	rm := s.metrics.route(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := inboundRequestID(r)
		sc, _ := trace.ParseTraceparent(r.Header.Get("Traceparent"))
		root := s.tracer.StartRoot(pattern, sc)
		ri := &reqInfo{id: id, traceID: root.TraceID().String(), span: root, tenant: tenantID(r)}
		root.SetAttr("tenant", ri.tenant)
		s.metrics.begin()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sw.Header().Set("X-Request-Id", id)
		if ri.traceID != "" {
			sw.Header().Set("X-Trace-Id", ri.traceID)
		}
		r = r.WithContext(withReqInfo(r.Context(), ri))
		defer func() {
			dur := time.Since(start)
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The sanctioned abort: account for the request, then
					// let net/http handle the panic as designed.
					root.SetInt("status", int64(sw.status))
					root.Finish()
					s.metrics.end(rm, sw.status, dur, sw.bytes, ri.traceID)
					panic(p)
				}
				s.metrics.panicked()
				s.logger.Error("handler panic",
					"request_id", id,
					"trace_id", ri.traceID,
					"route", pattern,
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
				root.SetError(fmt.Sprint("panic: ", p))
				if !sw.wroteHeader {
					writeError(sw, r, http.StatusInternalServerError, "internal server error")
				}
			}
			if sw.status >= 500 && !root.Failed() {
				root.SetError(http.StatusText(sw.status))
			}
			root.SetInt("status", int64(sw.status))
			root.Finish()
			s.metrics.end(rm, sw.status, dur, sw.bytes, ri.traceID)
			s.logRequest(r, pattern, ri, sw, dur)
		}()
		if gated {
			if d := s.adm.AllowRequest(ri.tenant); !d.OK {
				s.shedResponse(sw, r, d)
				return
			}
		}
		h(sw, r)
	})
}

// tenantID derives the request's tenant identity: a well-formed
// X-Tenant header, else the remote IP (the port is stripped so one
// client's keep-alive connections share a bucket).
func tenantID(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" && validTenant(t) {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// validTenant bounds self-declared tenant names to 64 bytes of
// [A-Za-z0-9._-]: a hostile header must not mint arbitrary limiter keys
// or smuggle structure into logs and trace attributes. Invalid names
// silently fall back to the remote IP rather than erroring — the header
// is advisory identity, not authentication.
func validTenant(t string) bool {
	if len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// shedResponse answers one refused admission decision: 429, a
// Retry-After hint, and the v1 error envelope naming the gate that
// refused (the Reason strings are stable, same set as the shed metric's
// reason label).
func (s *Server) shedResponse(w http.ResponseWriter, r *http.Request, d admission.Decision) {
	w.Header().Set("Retry-After", retryAfterValue(d.RetryAfter))
	writeError(w, r, http.StatusTooManyRequests, "request shed at the %s gate; retry after %v", d.Reason, d.RetryAfter)
}

// retryAfterValue renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (a zero would invite an immediate retry storm).
func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// Drain moves the server into shutdown mode: in-flight generate streams
// stop after their current candidate and emit an in-band shutdown error
// (a binary Error frame, or an NDJSON error line) so clients can tell
// the cut from a legitimately short stream. Call it before
// http.Server.Shutdown, which only waits for handlers to return.
// Idempotent.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// drainMessage is the in-band error emitted on streams Drain cuts short.
const drainMessage = "server shutting down"

// logRequest emits the per-request access-log record. Success is Debug
// so request-rate logging is opt-in; client errors are Warn and server
// errors Error. The Enabled check skips attribute assembly entirely when
// the level is filtered, keeping the hot path allocation-free under the
// default Info level.
func (s *Server) logRequest(r *http.Request, pattern string, ri *reqInfo, sw *statusWriter, dur time.Duration) {
	level := slog.LevelDebug
	switch {
	case sw.status >= 500:
		level = slog.LevelError
	case sw.status >= 400:
		level = slog.LevelWarn
	}
	ctx := r.Context()
	if !s.logger.Enabled(ctx, level) {
		return
	}
	s.logger.LogAttrs(ctx, level, "request",
		slog.String("request_id", ri.id),
		slog.String("trace_id", ri.traceID),
		slog.String("span_id", ri.span.Context().SpanID.String()),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", pattern),
		slog.String("tenant", ri.tenant),
		slog.Int("status", sw.status),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("duration", dur),
		slog.String("remote", r.RemoteAddr))
}

// statusWriter records the response status and body bytes for metrics.
type statusWriter struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wroteHeader {
		w.status = status
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	// An implicit first Write commits the default 200 header; record that
	// so the panic middleware knows a 500 can no longer be sent.
	w.wroteHeader = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ListModelsResponse is the body of GET /v1/models.
type ListModelsResponse struct {
	// Models holds the latest version of every model, sorted by name.
	Models []registry.Info `json:"models"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListModelsResponse{Models: s.reg.List()})
}

// ModelInfoResponse is the body of GET /v1/models/{name}.
type ModelInfoResponse struct {
	// Latest is the newest version's info.
	Latest registry.Info `json:"latest"`
	// Versions lists every stored version, oldest first.
	Versions []registry.Info `json:"versions"`
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	versions, err := s.reg.Versions(r.PathValue("name"))
	if err != nil {
		writeRegistryError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, ModelInfoResponse{
		Latest:   versions[len(versions)-1],
		Versions: versions,
	})
}

func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	version, err := versionParam(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	rc, info, err := s.reg.OpenRaw(r.PathValue("name"), version)
	if err != nil {
		writeRegistryError(w, r, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Model-Version", strconv.Itoa(info.Version))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, rc)
}

// versionParam parses the optional ?version=N query parameter; absent or
// 0 means latest. Malformed values are an error rather than silently
// serving the latest version.
func versionParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid version %q", raw)
	}
	return v, nil
}

// TrainOptions is the JSON-facing subset of core.Options accepted when
// training a model server-side.
type TrainOptions struct {
	// Prefix64Only restricts the model to the top 64 bits (the client
	// /64-prefix prediction configuration of §5.6).
	Prefix64Only bool `json:"prefix64_only,omitempty"`
	// MaxNybble restricts segmentation to the first MaxNybble nybbles.
	MaxNybble int `json:"max_nybble,omitempty"`
	// MaxParents bounds the number of BN parents per segment.
	MaxParents int `json:"max_parents,omitempty"`
	// Workers bounds the goroutines this training job may use, capped at
	// MaxTrainWorkers. Zero selects the server's default (Options.
	// TrainWorkers); the resulting model is identical for any value.
	Workers int `json:"workers,omitempty"`
}

// MaxTrainWorkers caps the per-request training parallelism: requests are
// untrusted and a worker count is a CPU multiplier.
const MaxTrainWorkers = 256

func (t TrainOptions) coreOptions(defaultWorkers int) core.Options {
	opts := core.Options{Prefix64Only: t.Prefix64Only}
	opts.Segmentation.MaxNybble = t.MaxNybble
	opts.Learn.MaxParents = t.MaxParents
	opts.Workers = t.Workers
	if opts.Workers == 0 {
		opts.Workers = defaultWorkers
	}
	return opts
}

// PutModelRequest is the body of PUT /v1/models/{name}. Exactly one of
// Model or Addresses must be set: Model uploads a pre-trained model in the
// core.Save format, Addresses trains a new model server-side on the
// posted address set.
type PutModelRequest struct {
	// Model is a serialized model document (the format Model.Save writes).
	Model json.RawMessage `json:"model,omitempty"`
	// Addresses is the training set, one textual IPv6 address each.
	Addresses []string `json:"addresses,omitempty"`
	// Options configures server-side training; ignored for uploads.
	Options TrainOptions `json:"options,omitempty"`
}

// PutModelResponse is the body of a successful PUT.
type PutModelResponse struct {
	// Info describes the stored version.
	Info registry.Info `json:"info"`
	// Trained is true when the server trained the model from addresses,
	// false when a pre-trained model was uploaded.
	Trained bool `json:"trained"`
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !registry.ValidName(name) {
		writeError(w, r, http.StatusBadRequest, "invalid model name %q", name)
		return
	}
	var req PutModelRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	switch {
	case len(req.Model) > 0 && len(req.Addresses) > 0:
		writeError(w, r, http.StatusBadRequest, "set either model or addresses, not both")
	case len(req.Model) > 0:
		info, err := s.reg.PutRaw(name, req.Model)
		switch {
		case err == nil:
			writeJSON(w, http.StatusCreated, PutModelResponse{Info: info})
		case errors.Is(err, registry.ErrInvalidModel):
			writeError(w, r, http.StatusBadRequest, "%v", err)
		default:
			// The document was valid; storing it failed server-side.
			writeError(w, r, http.StatusInternalServerError, "%v", err)
		}
	case len(req.Addresses) > 0:
		s.train(w, r, name, req)
	default:
		writeError(w, r, http.StatusBadRequest, "request needs a model or addresses")
	}
}

// train parses the posted addresses and builds the model on the worker
// pool, so that concurrent training requests queue instead of stampeding.
func (s *Server) train(w http.ResponseWriter, r *http.Request, name string, req PutModelRequest) {
	if req.Options.Workers < 0 || req.Options.Workers > MaxTrainWorkers {
		writeError(w, r, http.StatusBadRequest, "options.workers must be in 0..%d", MaxTrainWorkers)
		return
	}
	addrs := make([]ip6.Addr, 0, len(req.Addresses))
	for i, line := range req.Addresses {
		a, err := ip6.ParseAddr(line)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "address %d: %v", i, err)
			return
		}
		addrs = append(addrs, a)
	}
	var info registry.Info
	var buildErr error
	err := s.pool.Do(r.Context(), func() error {
		buildOpts := req.Options.coreOptions(s.opts.TrainWorkers)
		buildOpts.OnStage = s.stageObserver(r.Context(), name)
		m, err := core.Build(addrs, buildOpts)
		if err != nil {
			buildErr = err
			return err
		}
		info, err = s.reg.Put(name, m)
		return err
	})
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, PutModelResponse{Info: info, Trained: true})
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Client went away while queued; nothing useful to write.
		writeError(w, r, http.StatusServiceUnavailable, "request cancelled while queued")
	case buildErr != nil:
		writeError(w, r, http.StatusUnprocessableEntity, "training failed: %v", buildErr)
	default:
		// Training worked; persisting the model failed server-side.
		writeError(w, r, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("name")); err != nil {
		writeRegistryError(w, r, err)
		return
	}
	s.refresher.Forget(r.PathValue("name"))
	w.WriteHeader(http.StatusNoContent)
}

// BrowseRequest is the body of POST /v1/models/{name}/browse: one click
// state of the paper's conditional probability browser.
type BrowseRequest struct {
	// Version selects a model version; 0 means latest.
	Version int `json:"version,omitempty"`
	// Evidence fixes segments to value codes, e.g. {"J": "J1"}.
	Evidence map[string]string `json:"evidence,omitempty"`
}

// Distribution is the posterior distribution of one segment.
type Distribution struct {
	// Label is the segment letter (A, B, C, ...).
	Label string `json:"label"`
	// Entries are the segment's mined values with posterior probability.
	Entries []DistributionEntry `json:"entries"`
}

// DistributionEntry is one value of a segment.
type DistributionEntry struct {
	// Code is the value code (e.g. "B2").
	Code string `json:"code"`
	// Display is the human-readable value or range.
	Display string `json:"display"`
	// Prob is the posterior probability given the request's evidence.
	Prob float64 `json:"prob"`
	// IsRange marks mined ranges as opposed to exact values.
	IsRange bool `json:"is_range,omitempty"`
}

// BrowseResponse is the body of a successful browse query.
type BrowseResponse struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Distributions holds one posterior per segment, in address order —
	// the rows of Figs. 1(b), 7(b), 9(b), 10(b).
	Distributions []Distribution `json:"distributions"`
}

func (s *Server) handleBrowse(w http.ResponseWriter, r *http.Request) {
	var req BrowseRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	m, info, err := s.getModel(r.Context(), r.PathValue("name"), req.Version)
	if err != nil {
		writeRegistryError(w, r, err)
		return
	}
	dists, err := m.Browse(core.Evidence(req.Evidence))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	out := BrowseResponse{
		Name:          info.Name,
		Version:       info.Version,
		Distributions: make([]Distribution, len(dists)),
	}
	for i, d := range dists {
		entries := make([]DistributionEntry, len(d.Entries))
		for k, e := range d.Entries {
			entries[k] = DistributionEntry{
				Code:    e.Code,
				Display: e.Display,
				Prob:    e.Prob,
				IsRange: e.IsRange,
			}
		}
		out.Distributions[i] = Distribution{Label: d.Label, Entries: entries}
	}
	writeJSON(w, http.StatusOK, out)
}

// GenerateRequest is the body of POST /v1/models/{name}/generate.
type GenerateRequest struct {
	// Version selects a model version; 0 means latest.
	Version int `json:"version,omitempty"`
	// Count is the number of candidates to generate (the paper uses 1M).
	Count int `json:"count"`
	// Seed makes generation deterministic for a fixed model and options.
	// When omitted (null), the server derives a random seed — so clients
	// that do not care about reproducibility get independent streams
	// instead of everyone receiving the identical "random" candidates —
	// and echoes it in the X-Seed response header.
	Seed *int64 `json:"seed,omitempty"`
	// Evidence optionally constrains generation to segment values.
	Evidence map[string]string `json:"evidence,omitempty"`
	// Prefixes switches from candidate addresses to candidate /64
	// prefixes (§5.6).
	Prefixes bool `json:"prefixes,omitempty"`
	// MaxAttemptsFactor bounds the search for unique candidates; see
	// core.GenerateOptions. Values above MaxAttemptsFactorLimit are
	// rejected — the factor multiplies server CPU on low-support models.
	MaxAttemptsFactor int `json:"max_attempts_factor,omitempty"`
	// Workers bounds the goroutines drawing candidates for this request,
	// capped at MaxGenerateWorkers (requests are untrusted and a worker
	// count is a CPU multiplier). Zero selects the server's default
	// (Options.GenerateWorkers). The candidate stream is identical for
	// any value unless Unordered is set.
	Workers int `json:"workers,omitempty"`
	// Unordered trades the deterministic candidate order for throughput;
	// see core.GenerateOptions.Unordered.
	Unordered bool `json:"unordered,omitempty"`
	// Streams switches to batch mode: each entry describes one
	// independently-seeded candidate stream, and the response carries all
	// of them interleaved (frames tagged with a stream index in the binary
	// encoding, {"stream":i,...} lines in NDJSON). Mutually exclusive with
	// the top-level Count/Seed/Evidence/MaxAttemptsFactor; Version,
	// Prefixes, Workers and Unordered stay request-wide.
	Streams []GenerateStreamSpec `json:"streams,omitempty"`
}

// GenerateStreamSpec is one stream of a batch generate request.
type GenerateStreamSpec struct {
	// Count is the number of candidates this stream yields.
	Count int `json:"count"`
	// Seed makes this stream deterministic; omitted means the server
	// derives one (echoed comma-joined in X-Seed, and in this stream's
	// Seed frame in the binary encoding).
	Seed *int64 `json:"seed,omitempty"`
	// Evidence optionally constrains this stream to segment values.
	Evidence map[string]string `json:"evidence,omitempty"`
	// MaxAttemptsFactor bounds this stream's unique-candidate search.
	MaxAttemptsFactor int `json:"max_attempts_factor,omitempty"`
}

// MaxAttemptsFactorLimit caps the per-request MaxAttemptsFactor.
const MaxAttemptsFactorLimit = 1000

// MaxGenerateWorkers caps the per-request generation parallelism at
// what the engine can actually use (one worker per logical substream);
// accepting more would advertise parallelism that silently never
// materializes.
const MaxGenerateWorkers = core.MaxGenerateWorkers

// GenerateItem is one line of the NDJSON generate stream.
type GenerateItem struct {
	// Addr is a candidate address (empty in prefix mode).
	Addr string `json:"addr,omitempty"`
	// Prefix is a candidate /64 (empty in address mode).
	Prefix string `json:"prefix,omitempty"`
	// Error is set on a final trailer line when generation failed after
	// the stream had started; a stream that simply ends short of count
	// means the model's support was exhausted, not an error.
	Error string `json:"error,omitempty"`
	// Stream is the stream index on batch-response lines; nil on
	// single-stream responses (whose lines carry no stream key).
	Stream *int `json:"stream,omitempty"`
	// Done marks a batch stream's final line. Single-stream responses
	// signal completion by ending the body instead.
	Done bool `json:"done,omitempty"`
	// TraceID accompanies Error on trailer lines: the request's trace ID,
	// usable against /v1/debug/traces and server logs.
	TraceID string `json:"trace_id,omitempty"`
}

// handleGenerate streams candidates with bounded memory in the encoding
// the Accept header negotiates — NDJSON by default, the framed binary
// encoding of internal/wire when the client asks for it — single-stream
// or batch (req.Streams). Each candidate is encoded and written as it is
// drawn from the model, with periodic flushes, so the response size
// never accumulates server-side.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	enc, err := negotiateGenerateEncoding(r)
	if err != nil {
		writeError(w, r, http.StatusNotAcceptable, "%v", err)
		return
	}
	if req.Workers < 0 || req.Workers > MaxGenerateWorkers {
		writeError(w, r, http.StatusBadRequest, "workers must be in 0..%d", MaxGenerateWorkers)
		return
	}
	streams, batch, err := s.resolveStreams(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// Admission, gates 2 and 3 (the rate gate ran in the middleware):
	// charge the tenant's generation budget with the request's full
	// candidate count, then claim a tenant concurrency slot with bounded
	// queueing. A shed after the charge refunds it — the tenant generated
	// nothing.
	tenant := tenantFrom(r.Context())
	total := 0
	for _, st := range streams {
		total += st.count
	}
	if d := s.adm.ChargeGenerate(tenant, total); !d.OK {
		s.shedResponse(w, r, d)
		return
	}
	releaseSlot, d := s.adm.AcquireSlot(r.Context(), tenant)
	if !d.OK {
		s.adm.RefundGenerate(tenant, total)
		s.shedResponse(w, r, d)
		return
	}
	m, info, err := s.getModel(r.Context(), r.PathValue("name"), req.Version)
	if err != nil {
		releaseSlot()
		s.adm.RefundGenerate(tenant, total)
		writeRegistryError(w, r, err)
		return
	}
	s.encRequests[routeGenerate][enc].Add(1)
	if root := requestSpan(r.Context()); root != nil {
		root.SetAttr("encoding", enc.String())
		root.SetAttr("model", info.Name)
	}
	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("X-Model-Version", strconv.Itoa(info.Version))
	// Always echo the seeds in force, so a seedless request can be
	// replayed exactly by passing the header's value(s) back as "seed".
	w.Header().Set("X-Seed", seedHeader(streams))
	w.Header().Set("X-Encoding", enc.String())
	switch {
	case enc == encBinary:
		s.generateBinary(w, r, m, &req, streams, batch, releaseSlot)
	case batch:
		s.generateNDJSONBatch(w, r, m, &req, streams, releaseSlot)
	default:
		s.generateNDJSON(w, r, m, info, &req, streams[0], releaseSlot)
	}
}

// generateNDJSON is the single-stream NDJSON generate path — the
// original wire format, byte-identical since PR 5 (pinned by
// TestGenerateNDJSONMatchesEncodingJSON and the cross-encoding
// equivalence tests).
func (s *Server) generateNDJSON(w http.ResponseWriter, r *http.Request, m *core.Model, info registry.Info, req *GenerateRequest, st resolvedStream, release func()) {
	defer release()
	ctx := r.Context()
	opts := s.generateOptions(ctx, st, req)
	span := requestSpan(ctx).StartChild("generate.stream")
	span.SetInt("count", int64(st.count))
	span.SetInt("seed", st.seed)
	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	flushEvery := s.opts.flushEvery()

	// Each line is formatted into one pooled buffer with append-style
	// address formatting — no encoding/json, no per-line allocations —
	// byte-identical to the old json.Encoder output (pinned by
	// TestGenerateNDJSONMatchesEncodingJSON). The buffer returns to the
	// pool when the handler exits.
	lb := getLineBuf()
	defer putLineBuf(lb)
	lines := 0
	write := func() bool {
		if ctx.Err() != nil {
			return false // client went away: stop generating
		}
		if _, err := bw.Write(lb.b); err != nil {
			return false
		}
		lines++
		if lines%flushEvery == 0 {
			if err := bw.Flush(); err != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return true
	}

	var err error
	if req.Prefixes {
		err = m.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
			lb.b = append(lb.b[:0], `{"prefix":"`...)
			lb.b = p.AppendString(lb.b)
			lb.b = append(lb.b, '"', '}', '\n')
			return write()
		})
	} else {
		err = m.GenerateStream(opts, func(a ip6.Addr) bool {
			lb.b = append(lb.b[:0], `{"addr":"`...)
			lb.b = a.AppendString(lb.b)
			lb.b = append(lb.b, '"', '}', '\n')
			return write()
		})
	}
	span.SetInt("produced", int64(lines))
	if err != nil {
		span.SetError(err.Error())
		span.Finish()
		if lines == 0 {
			// Nothing streamed yet: a clean JSON error is still possible.
			writeError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
		// Mid-stream failure: the 200 status is already on the wire, so
		// emit an error trailer line carrying the trace ID — the client's
		// handle into /v1/debug/traces and the server logs — that it can
		// distinguish from a legitimately short stream.
		s.logger.Error("generate failed mid-stream",
			"request_id", requestID(ctx),
			"trace_id", traceIDString(ctx),
			"model", info.Name,
			"version", info.Version,
			"lines", lines,
			"err", err)
		lb.b = appendErrorLine(lb.b[:0], err.Error(), traceIDString(ctx))
		_, _ = bw.Write(lb.b)
	} else {
		if ctx.Err() == nil && s.isDraining() && lines < st.count {
			// Drain cut the stream short: emit the in-band shutdown error
			// so the client can tell this from exhausted model support.
			lb.b = appendErrorLine(lb.b[:0], drainMessage, traceIDString(ctx))
			_, _ = bw.Write(lb.b)
		}
		span.Finish()
	}
	_ = bw.Flush()
	s.candidates.Add(uint64(lines))
}

// randomSeed derives a fresh generation seed for requests that omit one.
// It reads the OS entropy source, falling back to the clock if that ever
// fails — seed quality only has to make concurrent clients' streams
// distinct, not be cryptographic.
func randomSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return int64(binary.LittleEndian.Uint64(b[:]))
	}
	return time.Now().UnixNano()
}

// observeLine is one NDJSON line of POST /v1/models/{name}/observe.
type observeLine struct {
	Addr string `json:"addr"`
}

// ObserveResponse is the body of a successful observe request.
type ObserveResponse struct {
	// Accepted is how many addresses entered the model's window (per-/64
	// cap displacements are visible in Drift.Ingest.Deduped, not here:
	// a capped observation replaces its prefix's oldest entry rather
	// than being dropped).
	Accepted int `json:"accepted"`
	// Invalid is how many lines failed to parse (they are skipped, not
	// fatal: one bad line must not void a traffic batch).
	Invalid int `json:"invalid"`
	// Evaluated is true when this batch triggered a drift evaluation.
	Evaluated bool `json:"evaluated"`
	// Drift is the model's drift status after the batch.
	Drift DriftStatus `json:"drift"`
}

// observeBatchSize bounds how many parsed addresses accumulate before
// being pushed into the buffer, so arbitrarily large NDJSON bodies stream
// through bounded memory.
const observeBatchSize = 4096

// observeBatchPool reuses the fixed-size per-request parse batches of
// /observe across requests: at traffic rate the handler is called
// constantly, and a 64 KiB address batch per request is the kind of
// steady-state garbage this PR removes. Ownership rule: the batch slice
// never escapes the handler — Refresher.Observe (via Buffer.AddBatch)
// copies what it keeps — so returning it to the pool on exit is safe.
var observeBatchPool = sync.Pool{
	New: func() interface{} {
		b := make([]ip6.Addr, 0, observeBatchSize)
		return &b
	},
}

// handleObserve ingests observed addresses for a model. The body is
// NDJSON: each line either an {"addr": "..."} object, a JSON string, or a
// bare textual address (dataset file format) — so both API clients and
// `curl --data-binary @addrs.txt` work. Lines are scanned as byte slices
// (bare dataset-format lines, the traffic fast path, parse without any
// per-line allocation; only JSON-framed lines pay encoding/json) and
// streamed into the model's observation window in bounded batches; the
// response reports accept/drop counts and the drift status after the
// batch.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Existence up front: a typoed model name must 404 whatever the body
	// holds (a delete racing the request still surfaces through the
	// refresher's own lookup below).
	if _, err := s.reg.Versions(name); err != nil {
		writeRegistryError(w, r, err)
		return
	}
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		s.encRequests[routeObserve][encBinary].Add(1)
		w.Header().Set("X-Encoding", encBinary.String())
		s.observeBinary(w, r, name)
		return
	}
	s.encRequests[routeObserve][encNDJSON].Add(1)
	w.Header().Set("X-Encoding", encNDJSON.String())
	body := http.MaxBytesReader(w, r.Body, s.opts.maxBodyBytes())
	scanner := bufio.NewScanner(body)
	scanner.Buffer(make([]byte, 0, 64*1024), dataset.MaxLineBytes)

	var out ObserveResponse
	// Line-outcome counters for /metrics: accepted lines are added batch
	// by batch in flush (so early error returns still count what entered
	// the window); invalid lines are added once on the way out. The ingest
	// span covers the whole scan — including any drift evaluation a batch
	// trips, which appears as its child (the span rides the context into
	// the refresher).
	span := requestSpan(r.Context()).StartChild("observe.ingest")
	ctx := trace.ContextWithSpan(r.Context(), span)
	defer func() {
		s.observeInvalid.Add(uint64(out.Invalid))
		span.SetInt("accepted", int64(out.Accepted))
		span.SetInt("invalid", int64(out.Invalid))
		span.Finish()
	}()
	batchp := observeBatchPool.Get().(*[]ip6.Addr)
	batch := (*batchp)[:0]
	defer func() {
		*batchp = batch[:0]
		observeBatchPool.Put(batchp)
	}()
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		res, err := s.refresher.Observe(ctx, name, batch)
		batch = batch[:0]
		if err != nil {
			writeRegistryError(w, r, err)
			return false
		}
		out.Accepted += res.Accepted
		out.Evaluated = out.Evaluated || res.Evaluated
		s.observeAccepted.Add(uint64(res.Accepted))
		return true
	}
	for scanner.Scan() {
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var a ip6.Addr
		switch line[0] {
		case '{':
			var ol observeLine
			//eip:alloc-ok observe ingest is the documented slow path; object lines are schema-flexible
			if err := json.Unmarshal(line, &ol); err != nil || ol.Addr == "" {
				out.Invalid++
				continue
			}
			addr, err := ip6.ParseAddr(ol.Addr)
			if err != nil {
				out.Invalid++
				continue
			}
			a = addr
		case '"':
			var raw string
			//eip:alloc-ok bare-string lines need full JSON unescaping; same slow path
			if err := json.Unmarshal(line, &raw); err != nil {
				out.Invalid++
				continue
			}
			addr, err := ip6.ParseAddr(raw)
			if err != nil {
				out.Invalid++
				continue
			}
			a = addr
		default:
			// Bare lines take the dataset file format — the same parser
			// -ingest-file uses — so trailing comments and /len prefix
			// notation work identically over both feeds.
			addr, ok, err := dataset.ParseLineBytes(line)
			if err != nil {
				out.Invalid++
				continue
			}
			if !ok {
				continue
			}
			a = addr
		}
		batch = append(batch, a)
		if len(batch) >= observeBatchSize {
			if !flush() {
				return
			}
		}
	}
	if err := scanner.Err(); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, r, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if !flush() {
		return
	}
	out.Drift, _ = s.refresher.Status(name)
	writeJSON(w, http.StatusOK, out)
}

// handleDriftStatus reports the drift state of one model.
func (s *Server) handleDriftStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.refresher.Status(name)
	if !ok {
		// Distinguish "no observations yet" from "no such model".
		if _, err := s.reg.Versions(name); err != nil {
			writeRegistryError(w, r, err)
			return
		}
		st = DriftStatus{Model: name}
	}
	writeJSON(w, http.StatusOK, st)
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	// Version identifies the build (module version + VCS revision).
	Version string `json:"version"`
	// Registry summarizes the model store and its cache.
	Registry registry.Stats `json:"registry"`
	// Metrics summarizes request handling since startup.
	Metrics MetricsSnapshot `json:"metrics"`
	// Refresh summarizes the online ingest/drift/refresh loop.
	Refresh RefreshSummary `json:"refresh"`
	// Admission summarizes admission control, so load-balancer health
	// checks can see saturation (rising shed counts, deep queues) before
	// hard failure.
	Admission AdmissionSummary `json:"admission"`
}

// AdmissionSummary is the admission-control section of /healthz.
type AdmissionSummary struct {
	// Enabled is false when no admission gate is configured (the other
	// fields then stay zero).
	Enabled bool `json:"enabled"`
	// Tenants is how many tenants currently hold limiter state.
	Tenants int `json:"tenants"`
	// QueueDepth is how many requests are waiting for a tenant slot
	// right now, across all tenants.
	QueueDepth int `json:"queue_depth"`
	// SlotsInUse is how many generation streams hold tenant slots.
	SlotsInUse int `json:"slots_in_use"`
	// Admitted counts requests past the rate gate since startup.
	Admitted uint64 `json:"admitted"`
	// Shed counts refused requests since startup, all gates combined.
	Shed uint64 `json:"shed"`
}

func (s *Server) admissionSummary() AdmissionSummary {
	if s.adm == nil {
		return AdmissionSummary{}
	}
	st := s.adm.Stats()
	return AdmissionSummary{
		Enabled:    true,
		Tenants:    st.Tenants,
		QueueDepth: st.QueueDepth,
		SlotsInUse: st.SlotsInUse,
		Admitted:   st.Admitted,
		Shed:       st.Shed(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Version:   buildinfo.Version(),
		Registry:  s.reg.Stats(),
		Metrics:   s.metrics.Snapshot(),
		Refresh:   s.refresher.Summary(),
		Admission: s.admissionSummary(),
	})
}

// decodeBody decodes a JSON request body with a size cap, writing a 4xx
// and returning false on failure. An empty body decodes to the zero value.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	body := http.MaxBytesReader(w, r.Body, s.opts.maxBodyBytes())
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		if err == io.EOF {
			return true // empty body = all defaults
		}
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, r, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}
