package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"entropyip/internal/admission"
)

// doAs issues a request with an explicit X-Tenant header, the multi-
// tenant counterpart of the do helper.
func doAs(t *testing.T, s *Server, tenant, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Buffer
	if body != nil {
		rd = &bytes.Buffer{}
		if err := json.NewEncoder(rd).Encode(body); err != nil {
			t.Fatal(err)
		}
	} else {
		rd = bytes.NewBuffer(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// decodeShed asserts a response is the 429 envelope with the
// rate_limited code and a positive integer Retry-After header, returning
// that header's value in seconds.
func decodeShed(t *testing.T, w *httptest.ResponseRecorder) int {
	t.Helper()
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body: %s", w.Code, w.Body.String())
	}
	var env errorResponse
	if err := json.NewDecoder(w.Body).Decode(&env); err != nil {
		t.Fatalf("decoding shed envelope: %v", err)
	}
	if env.Error.Code != CodeRateLimited {
		t.Fatalf("error code = %q, want %q", env.Error.Code, CodeRateLimited)
	}
	ra := w.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	return secs
}

// TestAdmissionRateGateSheds429: once a tenant's request bucket is dry,
// further requests get the full shed contract — 429, rate_limited code,
// Retry-After — while a different tenant is untouched.
func TestAdmissionRateGateSheds429(t *testing.T) {
	s, reg := newTestServer(t, Options{Admission: admission.Config{
		RequestRate:  0.001, // effectively no refill within the test
		RequestBurst: 3,
	}})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if w := doAs(t, s, "greedy", "GET", "/v1/models", nil); w.Code != http.StatusOK {
			t.Fatalf("request %d within burst = %d: %s", i, w.Code, w.Body.String())
		}
	}
	decodeShed(t, doAs(t, s, "greedy", "GET", "/v1/models", nil))
	// Tenant isolation at the rate gate: a different tenant still admits.
	if w := doAs(t, s, "polite", "GET", "/v1/models", nil); w.Code != http.StatusOK {
		t.Fatalf("polite tenant shed alongside greedy: %d", w.Code)
	}
}

// TestAdmissionTenantFallsBackToRemoteIP: without an X-Tenant header the
// remote IP is the tenant key, so header-less clients still get rate
// limited — and an invalid header value falls back rather than minting a
// fresh bucket per junk value.
func TestAdmissionTenantFallsBackToRemoteIP(t *testing.T) {
	s, _ := newTestServer(t, Options{Admission: admission.Config{
		RequestRate:  0.001,
		RequestBurst: 2,
	}})
	// httptest.NewRequest pins RemoteAddr to 192.0.2.1:1234, so these
	// header-less requests share one bucket.
	for i := 0; i < 2; i++ {
		if w := do(t, s, "GET", "/v1/models", nil); w.Code != http.StatusOK {
			t.Fatalf("request %d = %d", i, w.Code)
		}
	}
	decodeShed(t, do(t, s, "GET", "/v1/models", nil))
	// An invalid tenant header (too long) must not bypass the IP bucket.
	decodeShed(t, doAs(t, s, strings.Repeat("x", 65), "GET", "/v1/models", nil))
}

// TestAdmissionGenBudgetSheds: the generation budget prices a request by
// its candidate count, not its request count — one huge generate puts
// the tenant in debt and the next is shed at the budget gate.
func TestAdmissionGenBudgetSheds(t *testing.T) {
	s, reg := newTestServer(t, Options{Admission: admission.Config{
		GenBudget: 1, // ~no refill during the test
		GenBurst:  500,
	}})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	// The budget lends: a request admits while the tenant is not in debt
	// and is charged in full, so one 800-candidate generate against a 500
	// burst admits and leaves the bucket at -300. The next request finds
	// the tenant in debt and sheds.
	if w := doAs(t, s, "heavy", "POST", "/v1/models/web/generate", GenerateRequest{Count: 800, Seed: seedPtr(1)}); w.Code != http.StatusOK {
		t.Fatalf("first generate = %d: %s", w.Code, w.Body.String())
	}
	secs := decodeShed(t, doAs(t, s, "heavy", "POST", "/v1/models/web/generate", GenerateRequest{Count: 10, Seed: seedPtr(2)}))
	if secs < 1 {
		t.Fatalf("budget shed Retry-After = %d", secs)
	}
	// Another tenant's budget is separate.
	if w := doAs(t, s, "light", "POST", "/v1/models/web/generate", GenerateRequest{Count: 100, Seed: seedPtr(3)}); w.Code != http.StatusOK {
		t.Fatalf("light tenant shed on heavy's debt: %d", w.Code)
	}
}

// TestAdmissionShedIsUnmetered: health, metrics, and the OpenAPI
// document stay reachable for a tenant that is fully rate limited —
// operators and load balancers must be able to observe saturation.
func TestAdmissionShedIsUnmetered(t *testing.T) {
	s, _ := newTestServer(t, Options{Admission: admission.Config{
		RequestRate:  0.001,
		RequestBurst: 1,
	}})
	if w := doAs(t, s, "greedy", "GET", "/v1/models", nil); w.Code != http.StatusOK {
		t.Fatalf("burst request = %d", w.Code)
	}
	decodeShed(t, doAs(t, s, "greedy", "GET", "/v1/models", nil))
	for _, path := range []string{"/healthz", "/v1/healthz", "/metrics", "/v1/openapi.json"} {
		if w := doAs(t, s, "greedy", "GET", path, nil); w.Code != http.StatusOK {
			t.Errorf("%s gated for a shed tenant: %d", path, w.Code)
		}
	}
}

// TestHealthzReportsAdmission: /v1/healthz carries the admission
// summary — enabled flag, tenant count, and cumulative shed count.
func TestHealthzReportsAdmission(t *testing.T) {
	s, _ := newTestServer(t, Options{Admission: admission.Config{
		RequestRate:  0.001,
		RequestBurst: 1,
	}})
	if w := doAs(t, s, "a", "GET", "/v1/models", nil); w.Code != http.StatusOK {
		t.Fatalf("seed request = %d", w.Code)
	}
	decodeShed(t, doAs(t, s, "a", "GET", "/v1/models", nil))
	w := do(t, s, "GET", "/v1/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	var h HealthResponse
	decode(t, w, &h)
	if !h.Admission.Enabled {
		t.Error("healthz admission.enabled = false with admission configured")
	}
	if h.Admission.Tenants < 1 {
		t.Errorf("healthz admission.tenants = %d, want >= 1", h.Admission.Tenants)
	}
	if h.Admission.Shed < 1 {
		t.Errorf("healthz admission.shed = %d, want >= 1", h.Admission.Shed)
	}
	if h.Admission.Admitted < 1 {
		t.Errorf("healthz admission.admitted = %d, want >= 1", h.Admission.Admitted)
	}
}

// TestHealthzAdmissionDisabled: with no admission config the summary
// reports disabled and zeros rather than being omitted (additive schema).
func TestHealthzAdmissionDisabled(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := do(t, s, "GET", "/v1/healthz", nil)
	var h HealthResponse
	decode(t, w, &h)
	if h.Admission.Enabled {
		t.Error("healthz admission.enabled = true without admission config")
	}
}

// TestMetricsExposeAdmissionSeries: the Prometheus exposition carries
// the eip_admission_* family once admission is enabled, with the shed
// reason as a label.
func TestMetricsExposeAdmissionSeries(t *testing.T) {
	s, _ := newTestServer(t, Options{Admission: admission.Config{
		RequestRate:  0.001,
		RequestBurst: 1,
	}})
	if w := doAs(t, s, "a", "GET", "/v1/models", nil); w.Code != http.StatusOK {
		t.Fatalf("seed request = %d", w.Code)
	}
	decodeShed(t, doAs(t, s, "a", "GET", "/v1/models", nil))
	w := do(t, s, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"eip_admission_admitted_total",
		`eip_admission_shed_total{reason="rate"}`,
		"eip_admission_tenants",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestAdmissionSlotQueueSheds: with one slot and a zero-depth queue, a
// second concurrent generate for the same tenant is shed at the
// queue_full gate instead of waiting.
func TestAdmissionSlotQueueSheds(t *testing.T) {
	s, reg := newTestServer(t, Options{Admission: admission.Config{
		TenantSlots: 1,
		QueueDepth:  0,
		MaxWait:     10 * time.Millisecond,
	}, FlushEvery: 1})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the single slot with a long-running stream.
	first, err := http.Post(ts.URL+"/v1/models/web/generate", "application/json",
		strings.NewReader(`{"count": 10000000, "seed": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer first.Body.Close()
	buf := make([]byte, 1) // read one byte so the stream is provably live
	if _, err := first.Body.Read(buf); err != nil {
		t.Fatalf("reading first stream: %v", err)
	}

	// Same-tenant second request must shed (httptest server gives both
	// requests the same remote IP, hence the same fallback tenant).
	req, err := http.NewRequest("POST", ts.URL+"/v1/models/web/generate",
		strings.NewReader(`{"count": 10, "seed": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent generate = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue shed missing Retry-After")
	}
}
