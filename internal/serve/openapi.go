package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"entropyip/internal/wire"
)

func mustMarshalIndent(v interface{}) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err) // the document is build-time static; failure is a bug
	}
	return b
}

// The OpenAPI document and docs/API.md are both rendered from the
// hand-maintained apiOperations table below — one source of truth for
// the API surface. TestOpenAPIRoutesMatchMux diffs the table against the
// patterns actually registered on the mux (so a new handler cannot ship
// undocumented), and TestAPIDocsInSync pins docs/API.md to the rendered
// markdown (regenerate with UPDATE_API_DOCS=1 go test ./internal/serve
// -run APIDocs).

// apiOperation describes one route of the v1 API.
type apiOperation struct {
	// Method and Path form the mux pattern ("POST /v1/models/{name}/generate").
	Method, Path string
	// Summary is the one-line description.
	Summary string
	// Description elaborates (markdown in docs, plain text in the spec).
	Description string
	// RequestTypes lists accepted request content types (nil: no body).
	RequestTypes []string
	// ResponseTypes lists possible success response content types.
	ResponseTypes []string
	// Statuses lists the statuses this route answers with.
	Statuses []int
}

const (
	ctJSON   = "application/json"
	ctNDJSON = "application/x-ndjson"
)

// apiOperations is the API surface, in documentation order.
var apiOperations = []apiOperation{
	{
		Method: "GET", Path: "/v1/models",
		Summary:       "List models",
		Description:   "Returns the latest version of every model, sorted by name.",
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200, 429},
	},
	{
		Method: "GET", Path: "/v1/models/{name}",
		Summary:       "Model info",
		Description:   "Returns the latest version's info plus every stored version, oldest first.",
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200, 404, 429},
	},
	{
		Method: "GET", Path: "/v1/models/{name}/model",
		Summary:       "Download the serialized model",
		Description:   "Streams the stored model document (the core.Save format). `?version=N` selects a version; absent or 0 means latest. The `X-Model-Version` response header names the version served.",
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200, 400, 404, 429},
	},
	{
		Method: "PUT", Path: "/v1/models/{name}",
		Summary:       "Upload or train a model",
		Description:   "Body carries either `model` (a pre-trained document) or `addresses` (a training set built server-side on a bounded worker pool; 503 with Retry-After when the training queue is full).",
		RequestTypes:  []string{ctJSON},
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{201, 400, 413, 422, 429, 500, 503},
	},
	{
		Method: "DELETE", Path: "/v1/models/{name}",
		Summary:     "Delete all versions of a model",
		Description: "Removes every stored version and the model's ingest/drift state.",
		Statuses:    []int{204, 404, 429},
	},
	{
		Method: "POST", Path: "/v1/models/{name}/browse",
		Summary:       "Conditional probability query",
		Description:   "One click state of the paper's conditional probability browser: posts evidence (fixed segment values), returns every segment's posterior distribution.",
		RequestTypes:  []string{ctJSON},
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200, 400, 404, 429},
	},
	{
		Method: "POST", Path: "/v1/models/{name}/generate",
		Summary: "Stream candidate addresses or prefixes",
		Description: "Streams generated candidates with bounded server memory. The `Accept` header negotiates the response encoding: NDJSON (default) or the framed binary wire format (`" + wire.ContentType + "`, 16 bytes per address). " +
			"A request with `streams` is a batch: every entry is an independently-seeded stream and the response interleaves all of them with per-stream framing (binary frame stream indexes, or `{\"stream\":i,...}` NDJSON lines ending in `{\"stream\":i,\"done\":true}`). " +
			"Response headers: `X-Seed` (effective seed(s), comma-joined), `X-Encoding` (`ndjson`/`binary`), `X-Model-Version`. 406 when `Accept` admits neither encoding.",
		RequestTypes:  []string{ctJSON},
		ResponseTypes: []string{ctNDJSON, wire.ContentType},
		Statuses:      []int{200, 400, 404, 406, 413, 429},
	},
	{
		Method: "POST", Path: "/v1/models/{name}/observe",
		Summary: "Ingest observed addresses",
		Description: "Feeds observed traffic into the model's ingest window for drift detection and (when configured) automatic refresh. The request `Content-Type` selects the body decoding: NDJSON / bare dataset lines (default; malformed lines are counted, not fatal), or the framed binary wire format (`" + wire.ContentType + "`; malformed framing rejects the request). " +
			"Responds with accept/invalid counts and the model's drift status; `X-Encoding` names the decoded encoding.",
		RequestTypes:  []string{ctNDJSON, wire.ContentType},
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200, 400, 404, 413, 429},
	},
	{
		Method: "GET", Path: "/v1/models/{name}/drift",
		Summary:       "Drift status",
		Description:   "Returns the model's drift state (ingest window, divergence scores, refresh history).",
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200, 404, 429},
	},
	{
		Method: "GET", Path: "/v1/debug/traces",
		Summary: "Flight-recorder traces",
		Description: "The in-process flight recorder's retained request traces (tail-sampled: errors, panics, shadow-rejected rotations and slow requests are always kept; the rest probabilistically). " +
			"Without parameters, lists retained traces newest first (`?limit=N` caps the listing, default 50). With `?trace_id=<32 hex>` — the value of the `X-Trace-Id` response header, the `trace_id` error-envelope field, or a metrics exemplar — returns that trace's full span tree, or 404 if the recorder no longer holds it.",
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200, 400, 404},
	},
	{
		Method: "GET", Path: "/v1/healthz",
		Summary:       "Liveness and build info",
		Description:   "Liveness plus build version, registry stats, request metrics and refresh-loop summary. Also served at `/healthz`.",
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200},
	},
	{
		Method: "GET", Path: "/v1/openapi.json",
		Summary:       "This API description",
		Description:   "The OpenAPI 3.0 document of the v1 API, rendered from the same source as docs/API.md.",
		ResponseTypes: []string{ctJSON},
		Statuses:      []int{200},
	},
}

// specRoutePatterns returns the mux patterns the spec documents,
// "METHOD /path", sorted.
func specRoutePatterns() []string {
	out := make([]string, len(apiOperations))
	for i, op := range apiOperations {
		out[i] = op.Method + " " + op.Path
	}
	sort.Strings(out)
	return out
}

// openAPIDocument builds the OpenAPI 3.0 document as marshal-ready maps.
// Bodies are documented loosely (the Go types in this package are the
// schema of record); the document's value is the route list, the content
// types and the error envelope, which automated clients key on.
func openAPIDocument() map[string]interface{} {
	errorSchema := map[string]interface{}{
		"type": "object",
		"properties": map[string]interface{}{
			"error": map[string]interface{}{
				"type": "object",
				"properties": map[string]interface{}{
					"code":       map[string]interface{}{"type": "string", "description": "stable machine-matchable class: invalid_request, not_found, not_acceptable, payload_too_large, unsupported_media_type, unprocessable, rate_limited, internal, unavailable"},
					"message":    map[string]interface{}{"type": "string"},
					"request_id": map[string]interface{}{"type": "string", "description": "matches the X-Request-Id response header"},
				},
				"required": []string{"code", "message"},
			},
		},
		"required": []string{"error"},
	}
	paths := map[string]interface{}{}
	for _, op := range apiOperations {
		item, _ := paths[op.Path].(map[string]interface{})
		if item == nil {
			item = map[string]interface{}{}
			paths[op.Path] = item
		}
		responses := map[string]interface{}{}
		for _, status := range op.Statuses {
			resp := map[string]interface{}{"description": http.StatusText(status)}
			var types []string
			if status < 400 {
				types = op.ResponseTypes
			} else {
				types = []string{ctJSON} // the error envelope
			}
			if len(types) > 0 && status != 204 {
				content := map[string]interface{}{}
				for _, ct := range types {
					schema := map[string]interface{}{"type": "object"}
					if status >= 400 {
						schema = map[string]interface{}{"$ref": "#/components/schemas/Error"}
					} else if ct != ctJSON {
						schema = map[string]interface{}{"type": "string", "format": "binary"}
					}
					content[ct] = map[string]interface{}{"schema": schema}
				}
				resp["content"] = content
			}
			responses[fmt.Sprint(status)] = resp
		}
		operation := map[string]interface{}{
			"summary":     op.Summary,
			"description": op.Description,
			"responses":   responses,
		}
		if len(op.RequestTypes) > 0 {
			content := map[string]interface{}{}
			for _, ct := range op.RequestTypes {
				schema := map[string]interface{}{"type": "object"}
				if ct != ctJSON {
					schema = map[string]interface{}{"type": "string", "format": "binary"}
				}
				content[ct] = map[string]interface{}{"schema": schema}
			}
			operation["requestBody"] = map[string]interface{}{"content": content}
		}
		if strings.Contains(op.Path, "{name}") {
			operation["parameters"] = []interface{}{map[string]interface{}{
				"name": "name", "in": "path", "required": true,
				"schema": map[string]interface{}{"type": "string"},
			}}
		}
		item[strings.ToLower(op.Method)] = operation
	}
	return map[string]interface{}{
		"openapi": "3.0.3",
		"info": map[string]interface{}{
			"title":       "Entropy/IP serving API",
			"version":     "1",
			"description": "Model registry, conditional-probability browsing, candidate generation and traffic observation for Entropy/IP models. Non-2xx responses all carry the Error envelope; streaming routes negotiate NDJSON or the framed binary wire encoding.",
		},
		"paths": paths,
		"components": map[string]interface{}{
			"schemas": map[string]interface{}{"Error": errorSchema},
		},
	}
}

// openAPIBytes caches the rendered document; the spec is static per
// process.
var openAPIBytes struct {
	once sync.Once
	body []byte
}

func (s *Server) handleOpenAPI(w http.ResponseWriter, r *http.Request) {
	openAPIBytes.once.Do(func() {
		openAPIBytes.body = mustMarshalIndent(openAPIDocument())
	})
	w.Header().Set("Content-Type", ctJSON)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(openAPIBytes.body)
}

// renderAPIMarkdown renders docs/API.md from the same operations table
// the OpenAPI document is built from.
func renderAPIMarkdown() []byte {
	var b strings.Builder
	b.WriteString("# Entropy/IP serving API\n\n")
	b.WriteString("<!-- Generated from internal/serve/openapi.go — do not edit by hand.\n")
	b.WriteString("     Regenerate: UPDATE_API_DOCS=1 go test ./internal/serve -run APIDocs -->\n\n")
	b.WriteString("The HTTP API of `eipserved`. The same definitions are served live at\n")
	b.WriteString("`GET /v1/openapi.json`. All request/response bodies are JSON unless a\n")
	b.WriteString("route says otherwise; streaming routes negotiate NDJSON or the framed\n")
	b.WriteString("binary wire encoding (`" + wire.ContentType + "`, see README\n")
	b.WriteString("\"Wire protocol\").\n\n")
	b.WriteString("## Errors\n\n")
	b.WriteString("Every non-2xx response carries one body shape, the v1 error envelope:\n\n")
	b.WriteString("```json\n{\"error\": {\"code\": \"not_found\", \"message\": \"...\", \"request_id\": \"req-42\"}}\n```\n\n")
	b.WriteString("`code` is a stable machine-matchable class (`invalid_request`,\n")
	b.WriteString("`not_found`, `not_acceptable`, `payload_too_large`,\n")
	b.WriteString("`unsupported_media_type`, `unprocessable`, `rate_limited`, `internal`,\n")
	b.WriteString("`unavailable`); `message` is human-readable and free to change;\n")
	b.WriteString("`request_id` matches the `X-Request-Id` response header and the\n")
	b.WriteString("server's structured logs.\n")
	b.WriteString("Earlier releases answered with ad-hoc `{\"error\": \"<string>\"}` bodies —\n")
	b.WriteString("those shapes are gone; match on the envelope.\n\n")
	b.WriteString("## Admission control\n\n")
	b.WriteString("With admission control configured (see `eipserved -rate-limit`,\n")
	b.WriteString("`-gen-budget`, `-queue-depth`, `-tenant-slots`), every `/v1/models`\n")
	b.WriteString("route is gated per tenant. Tenant identity is the `X-Tenant` request\n")
	b.WriteString("header (1–64 bytes of `[A-Za-z0-9._-]`), falling back to the client\n")
	b.WriteString("IP. A request refused at any gate — request rate, generation budget,\n")
	b.WriteString("queue full, or slot-wait deadline — answers `429` with the\n")
	b.WriteString("`rate_limited` envelope code and a `Retry-After` header (whole\n")
	b.WriteString("seconds) hinting when to retry; `pkg/client` honors it via\n")
	b.WriteString("`WithRetry`. Health, metrics and introspection routes are never\n")
	b.WriteString("gated.\n\n")
	b.WriteString("## Routes\n\n")
	b.WriteString("| Route | Summary | Statuses |\n|---|---|---|\n")
	for _, op := range apiOperations {
		statuses := make([]string, len(op.Statuses))
		for i, st := range op.Statuses {
			statuses[i] = fmt.Sprint(st)
		}
		fmt.Fprintf(&b, "| `%s %s` | %s | %s |\n", op.Method, op.Path, op.Summary, strings.Join(statuses, ", "))
	}
	b.WriteString("\n")
	for _, op := range apiOperations {
		fmt.Fprintf(&b, "### `%s %s`\n\n%s\n\n", op.Method, op.Path, op.Description)
		if len(op.RequestTypes) > 0 {
			fmt.Fprintf(&b, "Request: `%s`.\n", strings.Join(op.RequestTypes, "`, `"))
		}
		if len(op.ResponseTypes) > 0 {
			fmt.Fprintf(&b, "Response: `%s`.\n", strings.Join(op.ResponseTypes, "`, `"))
		}
		b.WriteString("\n")
	}
	return []byte(b.String())
}
