package synth

import (
	"entropyip/internal/plan"
)

// This file defines the concrete addressing plans of every archetype. Each
// builder documents which features of the paper's corresponding dataset it
// reproduces; the exact constants (which /32s, which subnet pools) are
// derived deterministically from the seed.

// single wraps one plan as a mixture.
func single(p *plan.Plan) *plan.Mixture {
	return &plan.Mixture{Name: p.Name, Components: []plan.Component{{Weight: 1, Plan: p}}}
}

// merge flattens several mixtures into one, scaling each mixture's
// components by the given weight.
func merge(name string, weights []float64, mixtures ...*plan.Mixture) *plan.Mixture {
	out := &plan.Mixture{Name: name}
	for i, m := range mixtures {
		total := 0.0
		for _, c := range m.Components {
			total += c.Weight
		}
		for _, c := range m.Components {
			out.Components = append(out.Components, plan.Component{
				Weight: weights[i] * c.Weight / total,
				Plan:   c.Plan,
			})
		}
	}
	return out
}

// buildS1 reproduces the paper's S1 (web hoster, §5.2, Fig. 7, Table 3):
// two /32 prefixes at 64%/36%, a variant-selector byte at bits 32-40 with
// the Table 3 distribution, and four addressing variants: pseudo-random
// IIDs with structured low nybbles (B1), nearly constant low bits (B2/B3),
// embedded IPv4 addresses (B4/B6-like), and an all-static variant (B5).
func buildS1(seed int64) *plan.Mixture {
	prefixes := []uint64{operatorPrefix(seed, 0), operatorPrefix(seed, 1)}
	prefixGen := plan.Choice(prefixes, []float64{0.635, 0.365})
	subnetC := plan.Choice([]uint64{0x00, 0x01, 0xc2, 0xfe, 0xff, 0x20, 0x30, 0x42, 0x5c, 0x71},
		[]float64{0.67, 0.11, 0.007, 0.004, 0.004, 0.06, 0.06, 0.035, 0.04, 0.01})
	subnetDE := plan.Uniform(0, 0xff) // nybbles 12-13: spread
	hostTail := plan.Choice([]uint64{0x0, 0x8, 0x1, 0x2, 0x5, 0x9},
		[]float64{0.49, 0.37, 0.05, 0.03, 0.03, 0.03})

	random := &plan.Plan{Name: "s1-random-iid", Fields: []plan.Field{
		field("prefix", 0, 8, prefixGen),
		field("variant", 8, 2, plan.Const(0x10)),
		field("subnetC", 10, 2, subnetC),
		field("subnetDE", 12, 2, subnetDE),
		field("subnetF", 14, 2, plan.Uniform(0, 0xff)),
		field("iid", 16, 13, plan.Random()),
		field("tailH", 29, 1, hostTail),
		field("tailI", 30, 1, hostTail),
		field("tailJ", 31, 1, plan.Uniform(0, 0xf)),
	}}
	static := &plan.Plan{Name: "s1-static", Fields: []plan.Field{
		field("prefix", 0, 8, prefixGen),
		field("variant", 8, 2, plan.UniformChoice(0x08, 0x09)),
		field("subnetC", 10, 2, subnetC),
		field("subnetDE", 12, 4, plan.Uniform(0, 0x60)),
		field("iid", 16, 13, plan.Const(0)),
		field("host", 29, 3, plan.Uniform(1, 0x2ff)),
	}}
	embedded := &plan.Plan{Name: "s1-embedded-v4", Fields: []plan.Field{
		field("prefix", 0, 8, prefixGen),
		field("variant", 8, 2, plan.UniformChoice(0x07, 0x05)),
		field("subnetC", 10, 2, subnetC),
		field("subnetDEF", 12, 4, plan.Uniform(0, 0x40)),
		field("zeros", 16, 8, plan.Const(0)),
		field("v4", 24, 8, plan.EmbeddedIPv4Hex(127)),
	}}
	simple := &plan.Plan{Name: "s1-simple", Fields: []plan.Field{
		field("prefix", 0, 8, prefixGen),
		field("variant", 8, 2, plan.Const(0x00)),
		field("subnet", 10, 6, plan.Uniform(0, 0x20)),
		field("host", 28, 4, plan.Uniform(1, 0x200)),
	}}
	return &plan.Mixture{Name: "S1", Components: []plan.Component{
		{Weight: 0.778, Plan: random},
		{Weight: 0.205, Plan: static},
		{Weight: 0.012, Plan: embedded},
		{Weight: 0.005, Plan: simple},
	}}
}

// buildS2 reproduces S2 (CDN with DNS + unicast): many globally distributed
// prefixes, per-site subnets and low-byte hosts.
func buildS2(seed int64) *plan.Mixture {
	prefixCount := 12
	prefixes := make([]uint64, prefixCount)
	for i := range prefixes {
		prefixes[i] = operatorPrefix(seed, 10+i)
	}
	sites := pool(seed, 3, 40, 0x140)
	siteW := zipfWeights(len(sites))
	p := &plan.Plan{Name: "s2-site", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Choice(prefixes, zipfWeights(prefixCount))),
		field("site", 8, 4, plan.Choice(sites, siteW)),
		field("zeros", 12, 4, plan.Const(0)),
		field("iid-zero", 16, 14, plan.Const(0)),
		field("host", 30, 2, plan.Uniform(1, 0xc8)),
	}}
	return single(p)
}

// buildS3 reproduces S3 (anycast CDN): essentially one /96 prefix used
// worldwide; only the last 32 bits discriminate clusters and hosts.
func buildS3(seed int64) *plan.Mixture {
	clusters := pool(seed, 5, 64, 0x140)
	p := &plan.Plan{Name: "s3-anycast", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 30))),
		field("fixed96", 8, 16, plan.Const(0x15)),
		field("cluster", 24, 4, plan.Choice(clusters, zipfWeights(len(clusters)))),
		field("host", 28, 4, plan.Uniform(1, 0x1000)),
	}}
	return single(p)
}

// buildS4 reproduces S4 (cloud provider): a simple structure in bits 32-48
// and host discrimination only in the last 32 bits.
func buildS4(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "s4-cloud", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 40))),
		field("region", 8, 4, plan.Choice([]uint64{0x1000, 0x2000, 0x4000, 0x8000}, []float64{0.4, 0.3, 0.2, 0.1})),
		field("zeros", 12, 12, plan.Const(0)),
		field("host", 24, 8, plan.Uniform(1, 1<<20)),
	}}
	return single(p)
}

// buildS5 reproduces S5 (large web company): many /64 prefixes whose last
// nybbles identify the service type.
func buildS5(seed int64) *plan.Mixture {
	services := []uint64{0x0050, 0x0443, 0x0025, 0x0053, 0x1935, 0x8080, 0x0143, 0x0993,
		0x0110, 0x5222, 0x0080, 0x8443, 0x0989, 0x3478, 0x5349, 0x0123}
	subnets := pool(seed, 7, 300, 0x1800)
	p := &plan.Plan{Name: "s5-services", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 50))),
		field("pop", 8, 2, plan.Choice(lowValues(3), []float64{0.5, 0.3, 0.2})),
		field("subnet", 10, 6, plan.Choice(subnets, zipfWeights(len(subnets)))),
		field("zeros", 16, 12, plan.Const(0)),
		field("service", 28, 4, plan.Choice(services, zipfWeights(len(services)))),
	}}
	return single(p)
}

// buildR1 reproduces R1 (global carrier, Fig. 9): bits 28-64 discriminate
// prefixes, the IID is a string of zeros ending in 1 or 2 (point-to-point
// links).
func buildR1(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "r1-backbone", Fields: []plan.Field{
		field("prefix", 0, 7, plan.Const(operatorPrefix(seed, 60)>>4)),
		field("prefix-low", 7, 1, plan.Choice(lowValues(3), []float64{0.6, 0.3, 0.1})),
		field("linknet", 8, 8, plan.Uniform(0, 200_000)),
		field("iid-zero", 16, 15, plan.Const(0)),
		field("ptp", 31, 1, plan.Choice([]uint64{1, 2}, []float64{0.55, 0.45})),
	}}
	return single(p)
}

// buildR2 reproduces R2: the bottom 64 bits equal 1 or 2.
func buildR2(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "r2-carrier", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 70))),
		field("linknet", 8, 6, plan.Uniform(0, 600_000)),
		field("zeros", 14, 2, plan.Const(0)),
		field("iid", 16, 16, plan.Choice([]uint64{1, 2}, []float64{0.5, 0.5})),
	}}
	return single(p)
}

// buildR3 reproduces R3: bits 32-48 discriminate prefixes, bits 48-116 are
// mostly zero, and the last 12 bits look pseudo-random.
func buildR3(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "r3-carrier", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 80))),
		field("pop", 8, 4, plan.Uniform(0, 600)),
		field("zeros", 12, 16, plan.Const(0)),
		field("zeros2", 28, 1, plan.Const(0)),
		field("tail", 29, 3, plan.Random()),
	}}
	return single(p)
}

// buildR4 reproduces R4: interface identifiers encode the router's IPv4
// address as base-10 octets across 16-bit words.
func buildR4(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "r4-carrier", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 90))),
		field("pop", 8, 4, plan.Uniform(0, 100)),
		field("zeros", 12, 4, plan.Const(0)),
		field("iid-v4", 16, 16, plan.EmbeddedIPv4DecimalPool(10<<24|1<<16, 17)),
	}}
	return single(p)
}

// buildR5 reproduces R5: addresses discriminate in bits 52-64 while the
// bottom bits follow a predictable low-byte pattern.
func buildR5(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "r5-carrier", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 100))),
		field("zeros", 8, 5, plan.Const(0)),
		field("linknet", 13, 3, plan.Uniform(0, 0x900)),
		field("iid-zero", 16, 14, plan.Const(0)),
		field("host", 30, 2, plan.Uniform(1, 0x30)),
	}}
	return single(p)
}

// buildC1 reproduces C1 (mobile ISP, Fig. 10): 47% of addresses follow a
// vendor-specific pattern (zero middle, IID ending in 01) coupled across
// segments; the rest have pseudo-random IIDs. Bits 32-64 discriminate /64
// prefixes, with the selector byte taking only low values.
func buildC1(seed int64) *plan.Mixture {
	prefix := operatorPrefix(seed, 110)
	android := &plan.Plan{Name: "c1-vendor-pattern", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(prefix)),
		field("selector", 8, 3, plan.Choice(lowValues(9), zipfWeights(9))),
		field("pool", 11, 5, plan.Uniform(0, 120_000)),
		field("zero-middle", 16, 5, plan.Const(0)),
		field("vendor", 21, 9, plan.Random()),
		field("tail01", 30, 2, plan.Const(0x01)),
	}}
	privacy := &plan.Plan{Name: "c1-random-iid", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(prefix)),
		field("selector", 8, 3, plan.Choice(lowValues(9), zipfWeights(9))),
		field("pool", 11, 5, plan.Uniform(0, 120_000)),
		field("iid", 16, 16, plan.Random()),
	}}
	return &plan.Mixture{Name: "C1", Components: []plan.Component{
		{Weight: 0.47, Plan: android},
		{Weight: 0.53, Plan: privacy},
	}}
}

// buildC2 reproduces C2 (mobile ISP): structured /64s and pseudo-random
// IIDs without the u-bit dip characteristic of standard SLAAC privacy
// addresses.
func buildC2(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "c2-mobile", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 120))),
		field("region", 8, 2, plan.Choice(lowValues(4), []float64{0.4, 0.3, 0.2, 0.1})),
		field("pool", 10, 6, plan.Uniform(0, 2_000_000)),
		field("iid", 16, 16, plan.Random()),
	}}
	return single(p)
}

// buildC3 reproduces C3 (large wired ISP): wide /64 pools and SLAAC privacy
// IIDs (with the u-bit dip).
func buildC3(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "c3-wired", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 130))),
		field("pool", 8, 8, plan.Uniform(0, 8_000_000)),
		field("iid", 16, 16, plan.SLAACPrivacy()),
	}}
	return single(p)
}

// buildC4 reproduces C4 (wired + mobile ISP): structure in bits 32-64 and
// SLAAC privacy IIDs.
func buildC4(seed int64) *plan.Mixture {
	regions := pool(seed, 9, 8, 0x100)
	p := &plan.Plan{Name: "c4-isp", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 140))),
		field("region", 8, 2, plan.Choice(regions, zipfWeights(len(regions)))),
		field("pool", 10, 6, plan.Uniform(0, 600_000)),
		field("iid", 16, 16, plan.SLAACPrivacy()),
	}}
	return single(p)
}

// buildC5 reproduces C5 (wired ISP): predictable, densely packed /64
// assignment (the easiest network for prefix prediction in Table 6) and
// SLAAC privacy IIDs.
func buildC5(seed int64) *plan.Mixture {
	p := &plan.Plan{Name: "c5-isp", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 150))),
		field("region", 8, 2, plan.Choice(lowValues(3), []float64{0.6, 0.3, 0.1})),
		field("pool", 10, 5, plan.Uniform(0, 120_000)),
		field("zeros", 15, 1, plan.Const(0)),
		field("iid", 16, 16, plan.SLAACPrivacy()),
	}}
	return single(p)
}

// buildAS reproduces the aggregate server dataset AS: a mixture of the S*
// archetypes (distinct operators), which produces the oscillating entropy
// of Fig. 6.
func buildAS(seed int64) *plan.Mixture {
	return merge("AS", []float64{0.35, 0.25, 0.15, 0.1, 0.15},
		buildS1(seed), buildS2(seed+1), buildS3(seed+2), buildS4(seed+3), buildS5(seed+4))
}

// buildAR reproduces the aggregate router dataset AR: a mixture of the R*
// archetypes plus a share of interfaces with MAC-derived Modified EUI-64
// IIDs, which produces the entropy dip at bits 88-104 of Fig. 6.
func buildAR(seed int64) *plan.Mixture {
	eui := &plan.Plan{Name: "ar-eui64", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 160))),
		field("linknet", 8, 8, plan.Uniform(0, 500_000)),
		field("iid", 16, 16, plan.EUI64(0x001122, 0x00aabb, 0x44ccdd, 0x00cafe)),
	}}
	m := merge("AR", []float64{0.35, 0.2, 0.1, 0.05, 0.05},
		buildR1(seed), buildR2(seed+1), buildR3(seed+2), buildR4(seed+3), buildR5(seed+4))
	m.Components = append(m.Components, plan.Component{Weight: 0.25, Plan: eui})
	return m
}

// buildAC reproduces the aggregate client dataset AC: dominated by SLAAC
// privacy IIDs, giving entropy ≈ 1 in the low 64 bits except for the u-bit
// dip at bits 68-72 (Fig. 6).
func buildAC(seed int64) *plan.Mixture {
	return merge("AC", []float64{0.2, 0.15, 0.3, 0.15, 0.2},
		buildC1(seed), buildC2(seed+1), buildC3(seed+2), buildC4(seed+3), buildC5(seed+4))
}

// buildAT reproduces the BitTorrent aggregate AT: like AC but with a larger
// share of MAC-derived EUI-64 IIDs, the difference the paper observes at
// bits 88-104 of Fig. 6.
func buildAT(seed int64) *plan.Mixture {
	eui := &plan.Plan{Name: "at-eui64", Fields: []plan.Field{
		field("prefix", 0, 8, plan.Const(operatorPrefix(seed, 170))),
		field("pool", 8, 8, plan.Uniform(0, 3_000_000)),
		field("iid", 16, 16, plan.EUI64(0x3c5ab4, 0xf0def1, 0x001a2b, 0x84d6d0)),
	}}
	m := merge("AT", []float64{0.25, 0.2, 0.15},
		buildC3(seed+5), buildC4(seed+6), buildC5(seed+7))
	m.Components = append(m.Components, plan.Component{Weight: 0.4, Plan: eui})
	return m
}
