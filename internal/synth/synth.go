// Package synth contains the catalog of synthetic dataset archetypes that
// stand in for the paper's real-world datasets (Table 1): five server
// networks S1-S5, five router networks R1-R5, five client networks C1-C5,
// and the aggregates AS, AR, AC and AT. Each archetype is an addressing
// plan (internal/plan) engineered to reproduce the structural features the
// paper reports for the corresponding real network — the features that
// drive every figure and table in the evaluation. See DESIGN.md
// ("Substitutions") for the rationale.
package synth

import (
	"fmt"
	"sort"

	"entropyip/internal/ip6"
	"entropyip/internal/plan"
	"entropyip/internal/stats"
)

// Kind classifies an archetype.
type Kind int

// Dataset kinds.
const (
	Server Kind = iota
	Router
	Client
	Aggregate
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Server:
		return "server"
	case Router:
		return "router"
	case Client:
		return "client"
	case Aggregate:
		return "aggregate"
	default:
		return "unknown"
	}
}

// Spec describes one synthetic dataset archetype.
type Spec struct {
	// Name is the dataset identifier used throughout the paper (S1, R3,
	// AC, ...).
	Name string
	// Kind classifies the dataset.
	Kind Kind
	// Description summarizes the structural features the archetype
	// reproduces.
	Description string
	// DefaultSize is the scaled-down default population size (the paper's
	// sizes divided by roughly 100, floor 1500), preserving relative
	// magnitudes for Table 1.
	DefaultSize int
	// PaperSize is the number of unique addresses the paper reports for
	// the dataset (Table 1), for reference in reports.
	PaperSize int
	// Build constructs the addressing plan; the seed selects concrete
	// random constants (e.g. which /32s the operator owns) so different
	// seeds give structurally identical but numerically distinct networks.
	Build func(seed int64) *plan.Mixture
}

// Catalog returns all dataset archetypes in presentation order
// (S1-S5, R1-R5, C1-C5, AS, AR, AC, AT).
func Catalog() []Spec {
	return []Spec{
		{Name: "S1", Kind: Server, PaperSize: 290_000, DefaultSize: 30_000, Build: buildS1,
			Description: "web hoster: two /32s, four addressing variants incl. embedded IPv4 and pseudo-random IIDs"},
		{Name: "S2", Kind: Server, PaperSize: 295_000, DefaultSize: 30_000, Build: buildS2,
			Description: "CDN using DNS+unicast: many globally distributed prefixes, low-byte hosts"},
		{Name: "S3", Kind: Server, PaperSize: 72_000, DefaultSize: 20_000, Build: buildS3,
			Description: "CDN using IP anycast: essentially one /96 worldwide, structure only in the last 32 bits"},
		{Name: "S4", Kind: Server, PaperSize: 18_000, DefaultSize: 10_000, Build: buildS4,
			Description: "cloud provider: simple structure in bits 32-48, only the last 32 bits discriminate hosts"},
		{Name: "S5", Kind: Server, PaperSize: 65_000, DefaultSize: 20_000, Build: buildS5,
			Description: "large web company: many /64s, last nybbles identify the service type"},
		{Name: "R1", Kind: Router, PaperSize: 6_700_000, DefaultSize: 60_000, Build: buildR1,
			Description: "global carrier: bits 28-64 discriminate prefixes, IIDs are ::1/::2 point-to-point"},
		{Name: "R2", Kind: Router, PaperSize: 235_000, DefaultSize: 30_000, Build: buildR2,
			Description: "carrier: bottom 64 bits equal 1 or 2"},
		{Name: "R3", Kind: Router, PaperSize: 21_000, DefaultSize: 15_000, Build: buildR3,
			Description: "carrier: bits 32-48 discriminate, mostly zeros, last 12 bits appear random"},
		{Name: "R4", Kind: Router, PaperSize: 3_400, DefaultSize: 3_000, Build: buildR4,
			Description: "carrier: IIDs encode IPv4 addresses as base-10 octets per 16-bit word"},
		{Name: "R5", Kind: Router, PaperSize: 1_700, DefaultSize: 1_500, Build: buildR5,
			Description: "carrier: bits 52-64 discriminate, predictable low-byte IIDs"},
		{Name: "C1", Kind: Client, PaperSize: 83_000_000, DefaultSize: 80_000, Build: buildC1,
			Description: "mobile ISP: 47% of IIDs end in 01 with a zero middle (vendor pattern), rest pseudo-random"},
		{Name: "C2", Kind: Client, PaperSize: 8_200_000, DefaultSize: 40_000, Build: buildC2,
			Description: "mobile ISP: structured /64s, pseudo-random IIDs without the u-bit dip"},
		{Name: "C3", Kind: Client, PaperSize: 530_000_000, DefaultSize: 100_000, Build: buildC3,
			Description: "wired ISP: wide /64 pools, SLAAC privacy IIDs"},
		{Name: "C4", Kind: Client, PaperSize: 39_000_000, DefaultSize: 60_000, Build: buildC4,
			Description: "wired+mobile ISP: structured bits 32-64, SLAAC privacy IIDs"},
		{Name: "C5", Kind: Client, PaperSize: 43_000_000, DefaultSize: 60_000, Build: buildC5,
			Description: "wired ISP: predictable /64 assignment, SLAAC privacy IIDs"},
		{Name: "AS", Kind: Aggregate, PaperSize: 790_000, DefaultSize: 50_000, Build: buildAS,
			Description: "aggregate servers: mixture of the S* archetypes across many /32s; oscillating entropy"},
		{Name: "AR", Kind: Aggregate, PaperSize: 12_000_000, DefaultSize: 60_000, Build: buildAR,
			Description: "aggregate routers: mixture of the R* archetypes plus a share of EUI-64 interfaces"},
		{Name: "AC", Kind: Aggregate, PaperSize: 3_500_000_000, DefaultSize: 120_000, Build: buildAC,
			Description: "aggregate web clients: mostly SLAAC privacy IIDs with the u-bit entropy dip"},
		{Name: "AT", Kind: Aggregate, PaperSize: 220_000, DefaultSize: 20_000, Build: buildAT,
			Description: "BitTorrent peers: like AC but with a larger share of MAC-derived EUI-64 IIDs"},
	}
}

// ByName returns the spec with the given (case-sensitive) name.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns all dataset names in catalog order.
func Names() []string {
	specs := Catalog()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Generate synthesizes n unique addresses from the named archetype.
// If n <= 0 the archetype's DefaultSize is used.
func Generate(name string, n int, seed int64) ([]ip6.Addr, error) {
	spec, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("synth: unknown dataset %q (have %v)", name, Names())
	}
	if n <= 0 {
		n = spec.DefaultSize
	}
	m := spec.Build(seed)
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: dataset %q: %w", name, err)
	}
	rng := stats.Split(seed, int64(kindStream(spec))+1000)
	return m.GenerateUnique(rng, n), nil
}

func kindStream(s Spec) int {
	// A stable small integer per dataset name for RNG stream separation.
	sum := 0
	for _, c := range s.Name {
		sum = sum*31 + int(c)
	}
	return sum
}

// ---- helpers ----

// operatorPrefix derives a deterministic /32 value for an operator from the
// seed and an index, staying within documentation-style prefixes
// (2001:db8::/32 with the first nybble varied, as the paper's anonymization
// does).
func operatorPrefix(seed int64, idx int) uint64 {
	rng := stats.Split(seed, int64(idx))
	first := uint64(2 + rng.Intn(6)) // 2..7
	return first<<28 | 0x0010db8 | uint64(idx&0xf)<<16
}

func field(name string, start, width int, g plan.Generator) plan.Field {
	return plan.Field{Name: name, Start: start, Width: width, Gen: g}
}

// lowValues returns the values 0..n-1, convenient for Choice/UniformChoice.
func lowValues(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// zipfWeights returns n weights following a 1/(i+1) profile, mimicking the
// popularity skew of real prefix usage.
func zipfWeights(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(i+1)
	}
	return out
}

// pool returns k distinct pseudo-random values below limit, deterministic
// in (seed, stream); used for subnet pools, service identifiers, etc.
func pool(seed int64, stream int64, k int, limit uint64) []uint64 {
	rng := stats.Split(seed, stream)
	seen := make(map[uint64]bool, k)
	out := make([]uint64, 0, k)
	for len(out) < k {
		v := rng.Uint64() % limit
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
