package synth

import (
	"testing"

	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
	"entropyip/internal/mra"
)

func TestCatalogComplete(t *testing.T) {
	specs := Catalog()
	if len(specs) != 19 {
		t.Fatalf("catalog has %d entries, want 19 (S1-S5, R1-R5, C1-C5, AS, AR, AC, AT)", len(specs))
	}
	want := []string{"S1", "S2", "S3", "S4", "S5", "R1", "R2", "R3", "R4", "R5",
		"C1", "C2", "C3", "C4", "C5", "AS", "AR", "AC", "AT"}
	names := Names()
	for i, w := range want {
		if names[i] != w {
			t.Errorf("catalog[%d] = %s, want %s", i, names[i], w)
		}
	}
	for _, s := range specs {
		if s.Build == nil || s.DefaultSize <= 0 || s.PaperSize <= 0 || s.Description == "" {
			t.Errorf("spec %s incomplete", s.Name)
		}
		m := s.Build(1)
		if err := m.Validate(); err != nil {
			t.Errorf("plan for %s invalid: %v", s.Name, err)
		}
	}
	if _, ok := ByName("S1"); !ok {
		t.Error("ByName(S1) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Server: "server", Router: "router", Client: "client", Aggregate: "aggregate", Kind(9): "unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestGenerateErrorsAndDefaults(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Error("unknown dataset should error")
	}
	addrs, err := Generate("R5", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := ByName("R5")
	if len(addrs) == 0 || len(addrs) > spec.DefaultSize {
		t.Errorf("default-size generation returned %d addresses", len(addrs))
	}
}

func TestGenerateUniqueAndDeterministic(t *testing.T) {
	a, err := Generate("S1", 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("S1", 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3000 || len(b) != 3000 {
		t.Fatalf("sizes: %d, %d", len(a), len(b))
	}
	set := ip6.NewSet(len(a))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation is not deterministic for equal seeds")
		}
		if !set.Add(a[i]) {
			t.Fatal("duplicate address in unique generation")
		}
	}
	c, err := Generate("S1", 3000, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds should give different populations")
	}
}

func gen(t *testing.T, name string, n int) []ip6.Addr {
	t.Helper()
	addrs, err := Generate(name, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

func TestS1Features(t *testing.T) {
	addrs := gen(t, "S1", 10000)
	// Two /32 prefixes, roughly 64/36.
	prefixes := map[ip6.Prefix]int{}
	for _, a := range addrs {
		prefixes[ip6.Prefix32(a)]++
	}
	if len(prefixes) != 2 {
		t.Fatalf("S1 should use exactly two /32s, got %d", len(prefixes))
	}
	max := 0
	for _, c := range prefixes {
		if c > max {
			max = c
		}
	}
	frac := float64(max) / float64(len(addrs))
	if frac < 0.58 || frac < 0.5 || frac > 0.72 {
		t.Errorf("dominant /32 fraction = %v, want ~0.64", frac)
	}
	// Some addresses embed IPv4 in the low 32 bits (the 127.x anonymized
	// aliases), and some have pseudo-random IIDs.
	embedded, random := 0, 0
	for _, a := range addrs {
		if v4, ok := ip6.EmbeddedIPv4(a); ok && v4>>24 == 127 {
			embedded++
		}
		if ip6.IIDLooksRandom(a) {
			random++
		}
	}
	if embedded == 0 {
		t.Error("S1 should contain embedded-IPv4 aliases")
	}
	if float64(random)/float64(len(addrs)) < 0.5 {
		t.Errorf("S1 should be dominated by pseudo-random IIDs, got %v", float64(random)/float64(len(addrs)))
	}
}

func TestS3AnycastSinglePrefix(t *testing.T) {
	addrs := gen(t, "S3", 5000)
	p96 := map[ip6.Prefix]int{}
	for _, a := range addrs {
		p96[ip6.PrefixFrom(a, 96)]++
	}
	if len(p96) != 1 {
		t.Errorf("S3 should use a single /96, got %d", len(p96))
	}
}

func TestR1PointToPointIIDs(t *testing.T) {
	addrs := gen(t, "R1", 8000)
	for _, a := range addrs {
		iidHigh := a.Field(16, 15)
		last := a.Field(31, 1)
		if iidHigh != 0 || (last != 1 && last != 2) {
			t.Fatalf("R1 address %v does not end in ::1/::2 with zero IID", a)
		}
	}
	// Prefix discrimination: many distinct /64s.
	p64 := ip6.NewPrefixSet(0)
	for _, a := range addrs {
		p64.Add(ip6.Prefix64(a))
	}
	if p64.Len() < 1000 {
		t.Errorf("R1 should spread across many /64s, got %d", p64.Len())
	}
}

func TestR4DecimalEmbeddedIPv4(t *testing.T) {
	addrs := gen(t, "R4", 2000)
	ok := 0
	for _, a := range addrs {
		if _, is := ip6.EmbeddedDecimalIPv4(a); is {
			ok++
		}
	}
	if float64(ok)/float64(len(addrs)) < 0.95 {
		t.Errorf("R4 IIDs should encode decimal IPv4 addresses (%d/%d)", ok, len(addrs))
	}
}

func TestC1VendorPattern(t *testing.T) {
	addrs := gen(t, "C1", 20000)
	pattern := 0
	for _, a := range addrs {
		if a.Field(30, 2) == 0x01 && a.Field(16, 5) == 0 {
			pattern++
		}
	}
	frac := float64(pattern) / float64(len(addrs))
	if frac < 0.40 || frac > 0.55 {
		t.Errorf("C1 vendor-pattern fraction = %v, want ~0.47", frac)
	}
}

func TestClientPrivacyEntropyDip(t *testing.T) {
	// C5 uses standard SLAAC privacy IIDs: entropy ~1 in the low 64 bits
	// except the u-bit nybble (bits 68-72), which dips to ~0.75 — the
	// signature the paper reads off Fig. 6.
	addrs := gen(t, "C5", 20000)
	p := entropy.NewProfile(addrs)
	if p.H[17] > 0.9 {
		t.Errorf("u-bit nybble entropy = %v, want a dip below 0.9", p.H[17])
	}
	for _, i := range []int{16, 18, 20, 24, 28, 31} {
		if p.H[i] < 0.95 {
			t.Errorf("privacy IID nybble %d entropy = %v, want ~1", i, p.H[i])
		}
	}
}

func TestAggregateRouterEUI64Dip(t *testing.T) {
	// AR contains a share of EUI-64 interfaces: the ff:fe marker lowers
	// entropy at bits 88-104 (nybbles 22-25) relative to neighbours.
	addrs := gen(t, "AR", 30000)
	p := entropy.NewProfile(addrs)
	ffNybbles := (p.H[22] + p.H[23] + p.H[24] + p.H[25]) / 4
	neighbours := (p.H[20] + p.H[21] + p.H[26] + p.H[27]) / 4
	if ffNybbles >= neighbours {
		t.Errorf("AR should dip at the ff:fe nybbles: %v vs neighbours %v", ffNybbles, neighbours)
	}
	euiCount := 0
	for _, a := range addrs {
		if ip6.IsEUI64(a) {
			euiCount++
		}
	}
	if frac := float64(euiCount) / float64(len(addrs)); frac < 0.15 || frac > 0.4 {
		t.Errorf("AR EUI-64 fraction = %v, want ~0.25", frac)
	}
}

func TestAggregateServerLowerEntropyThanClients(t *testing.T) {
	// The paper's Fig. 6 headline: server addresses are the least random,
	// clients the most (especially in the low 64 bits).
	servers := gen(t, "AS", 20000)
	clients := gen(t, "AC", 20000)
	hs := entropy.NewProfile(servers).Total()
	hc := entropy.NewProfile(clients).Total()
	if hs >= hc {
		t.Errorf("H_S(AS) = %v should be well below H_S(AC) = %v", hs, hc)
	}
	// Client IID half is near-maximal entropy.
	pc := entropy.NewProfile(clients)
	low := 0.0
	for i := 16; i < 32; i++ {
		low += pc.H[i]
	}
	if low/16 < 0.9 {
		t.Errorf("AC low-64-bit mean entropy = %v, want ~1", low/16)
	}
}

func TestATHasMoreEUI64ThanAC(t *testing.T) {
	ac := gen(t, "AC", 20000)
	at := gen(t, "AT", 10000)
	frac := func(addrs []ip6.Addr) float64 {
		n := 0
		for _, a := range addrs {
			if ip6.IsEUI64(a) {
				n++
			}
		}
		return float64(n) / float64(len(addrs))
	}
	if frac(at) <= frac(ac)+0.1 {
		t.Errorf("AT EUI-64 share (%v) should clearly exceed AC's (%v)", frac(at), frac(ac))
	}
}

func TestServerACRStructure(t *testing.T) {
	// S4: only the last 32 bits discriminate hosts — ACR must be ~0 in the
	// middle of the address and positive at the top of the last 32 bits.
	addrs := gen(t, "S4", 8000)
	acr := mra.New(addrs)
	if acr.MeanACR(12, 24) > 0.05 {
		t.Errorf("S4 middle ACR = %v, want ~0", acr.MeanACR(12, 24))
	}
	if acr.MeanACR(24, 30) < 0.3 {
		t.Errorf("S4 host ACR = %v, want high", acr.MeanACR(24, 30))
	}
}

func TestAllDatasetsGenerateCleanly(t *testing.T) {
	for _, s := range Catalog() {
		addrs, err := Generate(s.Name, 1500, 3)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if len(addrs) < 1000 {
			t.Errorf("%s: only %d unique addresses generated", s.Name, len(addrs))
		}
		set := ip6.NewSet(len(addrs))
		for _, a := range addrs {
			if a.IsZero() {
				t.Errorf("%s generated the zero address", s.Name)
			}
			if !set.Add(a) {
				t.Errorf("%s generated duplicates", s.Name)
			}
		}
	}
}

func BenchmarkGenerateC3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate("C3", 10000, 1); err != nil {
			b.Fatal(err)
		}
	}
}
