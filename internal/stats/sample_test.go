package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := RNG(42)
	b := RNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG with equal seeds should produce identical streams")
		}
	}
	if RNG(1).Uint64() == RNG(2).Uint64() {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestSplitIndependentStreams(t *testing.T) {
	a := Split(7, 0)
	b := Split(7, 1)
	c := Split(7, 0)
	if a.Uint64() != c.Uint64() {
		t.Error("Split with same (seed, stream) should be deterministic")
	}
	if Split(7, 0).Uint64() == b.Uint64() {
		t.Error("different streams should differ")
	}
}

func TestSampleN(t *testing.T) {
	in := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	rng := RNG(1)
	got := SampleN(rng, in, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Errorf("duplicate %d in sample without replacement", v)
		}
		seen[v] = true
	}
	// Oversampling returns everything.
	if len(SampleN(rng, in, 100)) != len(in) {
		t.Error("oversampling should return all items")
	}
	if len(SampleN(rng, in, -1)) != 0 {
		t.Error("negative n should return empty")
	}
	// Input unmodified.
	for i, v := range in {
		if v != i+1 {
			t.Fatal("SampleN modified its input")
		}
	}
}

func TestSplitTrainTest(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	train, test := SplitTrainTest(RNG(3), in, 30)
	if len(train) != 30 || len(test) != 70 {
		t.Fatalf("sizes = %d, %d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, v := range append(append([]int{}, train...), test...) {
		if seen[v] {
			t.Fatalf("item %d appears twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Error("train+test should partition the input")
	}
	// Degenerate sizes.
	tr, te := SplitTrainTest(RNG(3), in, 1000)
	if len(tr) != 100 || len(te) != 0 {
		t.Error("oversized train should take everything")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Feed 0..999 into a reservoir of 100 many times; each item should be
	// selected roughly 10% of the time.
	const n, capacity, trials = 1000, 100, 200
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](Split(9, int64(trial)), capacity)
		for i := 0; i < n; i++ {
			r.Add(i)
		}
		if r.Seen() != n {
			t.Fatalf("Seen = %d", r.Seen())
		}
		s := r.Sample()
		if len(s) != capacity {
			t.Fatalf("sample size = %d", len(s))
		}
		for _, v := range s {
			counts[v]++
		}
	}
	expected := float64(trials) * float64(capacity) / float64(n) // 20
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected { // very loose bound
			t.Errorf("item %d selected %d times, expected about %v", i, c, expected)
		}
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir[string](RNG(1), 10)
	r.Add("a")
	r.Add("b")
	if len(r.Sample()) != 2 {
		t.Error("reservoir smaller than capacity should hold everything")
	}
	neg := NewReservoir[int](RNG(1), -5)
	neg.Add(1)
	if len(neg.Sample()) != 0 {
		t.Error("negative capacity should behave as zero")
	}
}

func TestStratifiedSample(t *testing.T) {
	type item struct {
		group string
		id    int
	}
	var in []item
	for g, n := range map[string]int{"a": 50, "b": 3, "c": 20} {
		for i := 0; i < n; i++ {
			in = append(in, item{group: g, id: i})
		}
	}
	out := StratifiedSample(RNG(5), in, func(it item) string { return it.group }, 10)
	perGroup := map[string]int{}
	for _, it := range out {
		perGroup[it.group]++
	}
	if perGroup["a"] != 10 || perGroup["b"] != 3 || perGroup["c"] != 10 {
		t.Errorf("per-group counts = %v", perGroup)
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := RNG(11)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(rng, []float64{1, 2, 7})]++
	}
	total := 30000.0
	if math.Abs(float64(counts[0])/total-0.1) > 0.02 ||
		math.Abs(float64(counts[1])/total-0.2) > 0.02 ||
		math.Abs(float64(counts[2])/total-0.7) > 0.02 {
		t.Errorf("weighted choice distribution off: %v", counts)
	}
	// Zero and negative weights never selected.
	for i := 0; i < 100; i++ {
		if WeightedChoice(rng, []float64{0, -3, 1}) != 2 {
			t.Fatal("zero/negative weights must never be selected")
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for all-zero weights")
		}
	}()
	WeightedChoice(RNG(1), []float64{0, 0})
}
