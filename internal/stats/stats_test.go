package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFreqBasics(t *testing.T) {
	f := NewFreq()
	if f.Total() != 0 || f.Distinct() != 0 {
		t.Error("empty table should have zero totals")
	}
	f.Add(5)
	f.Add(5)
	f.Add(7)
	f.AddN(9, 3)
	f.AddN(9, 0)  // no-op
	f.AddN(9, -1) // no-op
	if f.Total() != 6 {
		t.Errorf("Total = %d", f.Total())
	}
	if f.Count(5) != 2 || f.Count(7) != 1 || f.Count(9) != 3 || f.Count(1) != 0 {
		t.Error("Count wrong")
	}
	if f.Distinct() != 3 {
		t.Errorf("Distinct = %d", f.Distinct())
	}
	if !almostEqual(f.P(5), 2.0/6.0) || !almostEqual(f.P(42), 0) {
		t.Error("P wrong")
	}
	vals := f.Values()
	if len(vals) != 3 || vals[0] != 5 || vals[2] != 9 {
		t.Errorf("Values = %v", vals)
	}
}

func TestFreqRemoveAndRanges(t *testing.T) {
	f := FreqOf([]uint64{1, 2, 2, 3, 3, 3, 10})
	if f.Remove(2) != 2 {
		t.Error("Remove(2) should return 2")
	}
	if f.Remove(2) != 0 {
		t.Error("second Remove(2) should return 0")
	}
	if f.Total() != 5 {
		t.Errorf("Total after remove = %d", f.Total())
	}
	if got := f.CountRange(1, 3); got != 4 {
		t.Errorf("CountRange(1,3) = %d", got)
	}
	if got := f.RemoveRange(3, 10); got != 4 {
		t.Errorf("RemoveRange(3,10) = %d", got)
	}
	if f.Total() != 1 || f.Distinct() != 1 {
		t.Errorf("after RemoveRange: total=%d distinct=%d", f.Total(), f.Distinct())
	}
}

func TestFreqMinMaxEntriesTopK(t *testing.T) {
	f := FreqOf([]uint64{8, 8, 8, 1, 1, 4})
	mn, ok := f.Min()
	if !ok || mn != 1 {
		t.Errorf("Min = %d, %v", mn, ok)
	}
	mx, ok := f.Max()
	if !ok || mx != 8 {
		t.Errorf("Max = %d, %v", mx, ok)
	}
	entries := f.Entries()
	if len(entries) != 3 || entries[0].Value != 1 || entries[0].Count != 2 {
		t.Errorf("Entries = %v", entries)
	}
	top := f.TopK(2)
	if len(top) != 2 || top[0].Value != 8 || top[1].Value != 1 {
		t.Errorf("TopK = %v", top)
	}
	if len(f.TopK(100)) != 3 || len(f.TopK(-1)) != 0 {
		t.Error("TopK bounds wrong")
	}
	empty := NewFreq()
	if _, ok := empty.Min(); ok {
		t.Error("Min of empty should be not ok")
	}
	if _, ok := empty.Max(); ok {
		t.Error("Max of empty should be not ok")
	}
}

func TestFreqClone(t *testing.T) {
	f := FreqOf([]uint64{1, 2, 3})
	c := f.Clone()
	c.Add(4)
	if f.Total() != 3 || c.Total() != 4 {
		t.Error("Clone is not independent")
	}
}

func TestFreqTotalInvariantProperty(t *testing.T) {
	// Property: total always equals the sum of counts.
	f := func(values []uint64) bool {
		tab := FreqOf(values)
		sum := 0
		for _, e := range tab.Entries() {
			sum += e.Count
		}
		return sum == tab.Total() && tab.Total() == len(values)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuartiles(t *testing.T) {
	q1, q2, q3 := Quartiles([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if !almostEqual(q1, 3) || !almostEqual(q2, 5) || !almostEqual(q3, 7) {
		t.Errorf("Quartiles = %v %v %v", q1, q2, q3)
	}
	q1, q2, q3 = Quartiles([]float64{5})
	if q1 != 5 || q2 != 5 || q3 != 5 {
		t.Error("single-element quartiles should all equal the element")
	}
	// numpy convention check: [1,2,3,4] -> 1.75, 2.5, 3.25
	q1, q2, q3 = Quartiles([]float64{1, 2, 3, 4})
	if !almostEqual(q1, 1.75) || !almostEqual(q2, 2.5) || !almostEqual(q3, 3.25) {
		t.Errorf("Quartiles([1..4]) = %v %v %v", q1, q2, q3)
	}
}

func TestQuartilesPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Quartiles(nil)
}

func TestQuantile(t *testing.T) {
	data := []float64{10, 20, 30, 40, 50}
	if !almostEqual(Quantile(data, 0), 10) || !almostEqual(Quantile(data, 1), 50) {
		t.Error("extreme quantiles wrong")
	}
	if !almostEqual(Quantile(data, 0.5), 30) {
		t.Error("median wrong")
	}
	// Input must not be modified (sorted copy).
	shuffled := []float64{50, 10, 30, 20, 40}
	_ = Quantile(shuffled, 0.5)
	if shuffled[0] != 50 {
		t.Error("Quantile modified its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for q=%v", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
}

func TestIQRAndTukey(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !almostEqual(IQR(data), 4) {
		t.Errorf("IQR = %v", IQR(data))
	}
	if !almostEqual(TukeyUpperFence(data, 1.5), 7+1.5*4) {
		t.Errorf("TukeyUpperFence = %v", TukeyUpperFence(data, 1.5))
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("degenerate cases should be 0")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Mean(data), 5) {
		t.Errorf("Mean = %v", Mean(data))
	}
	if !almostEqual(Variance(data), 4) {
		t.Errorf("Variance = %v", Variance(data))
	}
	if !almostEqual(StdDev(data), 2) {
		t.Errorf("StdDev = %v", StdDev(data))
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(data, qa) <= Quantile(data, qb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
