// Package stats provides the small statistics substrate used by Entropy/IP:
// frequency tables over categorical values, quartiles and Tukey outlier
// detection (used by segment mining, §4.3 step (a)), histograms, and the
// sampling helpers (uniform, reservoir and stratified sampling) used to
// build training sets the way the paper does (§3, §5.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Freq is a frequency table over uint64-valued observations (segment values
// fit in a uint64; see internal/segment).
type Freq struct {
	counts map[uint64]int
	total  int
}

// NewFreq returns an empty frequency table.
func NewFreq() *Freq {
	return &Freq{counts: make(map[uint64]int)}
}

// FreqOf builds a frequency table from the given observations.
func FreqOf(values []uint64) *Freq {
	f := NewFreq()
	for _, v := range values {
		f.Add(v)
	}
	return f
}

// Add records one observation of value v.
func (f *Freq) Add(v uint64) { f.AddN(v, 1) }

// AddN records n observations of value v.
func (f *Freq) AddN(v uint64, n int) {
	if n <= 0 {
		return
	}
	f.counts[v] += n
	f.total += n
}

// Remove deletes all observations of value v and returns how many there
// were. It is used by segment mining, which removes mined values from the
// remaining pool after each step.
func (f *Freq) Remove(v uint64) int {
	n := f.counts[v]
	if n > 0 {
		delete(f.counts, v)
		f.total -= n
	}
	return n
}

// Count returns the number of observations of value v.
func (f *Freq) Count(v uint64) int { return f.counts[v] }

// Total returns the total number of observations.
func (f *Freq) Total() int { return f.total }

// Distinct returns the number of distinct observed values.
func (f *Freq) Distinct() int { return len(f.counts) }

// P returns the empirical probability of value v.
func (f *Freq) P(v uint64) float64 {
	if f.total == 0 {
		return 0
	}
	return float64(f.counts[v]) / float64(f.total)
}

// Values returns the distinct observed values in ascending order.
func (f *Freq) Values() []uint64 {
	out := make([]uint64, 0, len(f.counts))
	for v := range f.counts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Entry is a (value, count) pair.
type Entry struct {
	Value uint64
	Count int
}

// Entries returns (value, count) pairs in ascending value order.
func (f *Freq) Entries() []Entry {
	vals := f.Values()
	out := make([]Entry, len(vals))
	for i, v := range vals {
		out[i] = Entry{Value: v, Count: f.counts[v]}
	}
	return out
}

// TopK returns up to k entries with the highest counts, ties broken by
// ascending value, in descending count order.
func (f *Freq) TopK(k int) []Entry {
	entries := f.Entries()
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Value < entries[j].Value
	})
	if k > len(entries) {
		k = len(entries)
	}
	if k < 0 {
		k = 0
	}
	return entries[:k]
}

// Min returns the smallest observed value; ok is false if the table is
// empty.
func (f *Freq) Min() (v uint64, ok bool) {
	first := true
	for x := range f.counts {
		if first || x < v {
			v = x
			first = false
		}
	}
	return v, !first
}

// Max returns the largest observed value; ok is false if the table is
// empty.
func (f *Freq) Max() (v uint64, ok bool) {
	first := true
	for x := range f.counts {
		if first || x > v {
			v = x
			first = false
		}
	}
	return v, !first
}

// CountRange returns the number of observations with lo <= value <= hi.
func (f *Freq) CountRange(lo, hi uint64) int {
	n := 0
	for v, c := range f.counts {
		if v >= lo && v <= hi {
			n += c
		}
	}
	return n
}

// RemoveRange deletes all observations with lo <= value <= hi and returns
// how many observations were removed.
func (f *Freq) RemoveRange(lo, hi uint64) int {
	removed := 0
	for v, c := range f.counts {
		if v >= lo && v <= hi {
			removed += c
			delete(f.counts, v)
		}
	}
	f.total -= removed
	return removed
}

// Clone returns a deep copy of the frequency table.
func (f *Freq) Clone() *Freq {
	c := &Freq{counts: make(map[uint64]int, len(f.counts)), total: f.total}
	for v, n := range f.counts {
		c.counts[v] = n
	}
	return c
}

// Quartiles returns the first quartile, median and third quartile of the
// data using linear interpolation between order statistics (type 7, the
// same convention as numpy's default). It panics on empty input.
func Quartiles(data []float64) (q1, q2, q3 float64) {
	if len(data) == 0 {
		panic("stats: Quartiles of empty data")
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	return quantileSorted(s, 0.25), quantileSorted(s, 0.5), quantileSorted(s, 0.75)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the data using linear
// interpolation. It panics on empty input or q outside [0,1].
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// IQR returns the inter-quartile range of the data.
func IQR(data []float64) float64 {
	q1, _, q3 := Quartiles(data)
	return q3 - q1
}

// TukeyUpperFence returns the classic upper outlier fence Q3 + k·IQR.
// The paper uses k = 1.5 to find unusually prevalent segment values.
func TukeyUpperFence(data []float64, k float64) float64 {
	q1, _, q3 := Quartiles(data)
	return q3 + k*(q3-q1)
}

// Mean returns the arithmetic mean of the data (0 for empty input).
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range data {
		sum += v
	}
	return sum / float64(len(data))
}

// Variance returns the population variance of the data (0 for fewer than
// two samples).
func Variance(data []float64) float64 {
	if len(data) < 2 {
		return 0
	}
	m := Mean(data)
	sum := 0.0
	for _, v := range data {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(data))
}

// StdDev returns the population standard deviation of the data.
func StdDev(data []float64) float64 { return math.Sqrt(Variance(data)) }
