package stats

import (
	"math/rand"
	"sort"
)

// RNG returns a deterministic pseudo-random generator for the given seed.
// All randomized components of this repository take a seed (or an
// explicit *rand.Rand) so that experiments are reproducible.
func RNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives a child RNG from a parent seed and a stream index, so that
// parallel components get independent, reproducible streams.
func Split(seed int64, stream int64) *rand.Rand {
	// SplitMix64-style mixing of the pair (seed, stream).
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// SampleN returns a uniform random sample of n items (without replacement)
// from the input slice, in random order. If n >= len(in), a shuffled copy
// of the whole input is returned. The input is not modified.
func SampleN[T any](rng *rand.Rand, in []T, n int) []T {
	cp := append([]T(nil), in...)
	rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if n > len(cp) {
		n = len(cp)
	}
	if n < 0 {
		n = 0
	}
	return cp[:n]
}

// SplitTrainTest splits the input into a training sample of size n and the
// remaining test set, without replacement, mirroring the paper's
// methodology of training on a random 1K sample and testing on the rest
// (§5.5). The input is not modified.
func SplitTrainTest[T any](rng *rand.Rand, in []T, n int) (train, test []T) {
	cp := append([]T(nil), in...)
	rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if n > len(cp) {
		n = len(cp)
	}
	if n < 0 {
		n = 0
	}
	return cp[:n], cp[n:]
}

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of items (Vitter's algorithm R). It is used when synthesizing very
// large aggregate datasets that are not materialized in memory.
type Reservoir[T any] struct {
	rng  *rand.Rand
	cap  int
	seen int
	buf  []T
}

// NewReservoir returns a reservoir sampler of the given capacity.
func NewReservoir[T any](rng *rand.Rand, capacity int) *Reservoir[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Reservoir[T]{rng: rng, cap: capacity, buf: make([]T, 0, capacity)}
}

// Add offers one item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, item)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.cap {
		r.buf[j] = item
	}
}

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int { return r.seen }

// Sample returns the current sample (at most capacity items).
func (r *Reservoir[T]) Sample() []T {
	return append([]T(nil), r.buf...)
}

// StratifiedSample selects up to perStratum items from each stratum.
// Strata are identified by the key function; the paper stratifies by /32
// prefix, selecting 1K addresses per /32, to avoid over-representing large
// networks (§3, §5.1). Output order is deterministic given the RNG: strata
// are visited in sorted key order.
func StratifiedSample[T any, K interface {
	comparable
	~string | ~int | ~uint64
}](rng *rand.Rand, in []T, key func(T) K, perStratum int) []T {
	groups := make(map[K][]T)
	for _, item := range in {
		k := key(item)
		groups[k] = append(groups[k], item)
	}
	keys := make([]K, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []T
	for _, k := range keys {
		out = append(out, SampleN(rng, groups[k], perStratum)...)
	}
	return out
}

// WeightedChoice selects an index in [0, len(weights)) with probability
// proportional to the weights. Zero and negative weights are treated as
// zero. It panics if all weights are zero or the slice is empty.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 || len(weights) == 0 {
		panic("stats: WeightedChoice with no positive weights")
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
