package dbscan

import "sort"

// WeightedPoint is a scalar value observed with an integer multiplicity.
// Clustering weighted points is equivalent to clustering the expanded
// multiset (each value repeated weight times) but runs in time proportional
// to the number of distinct values, which matters for segment mining where
// a popular value can occur hundreds of thousands of times.
type WeightedPoint struct {
	Value  float64
	Weight int
}

// Cluster1DWeighted runs DBSCAN over a weighted 1-D multiset. A point is a
// core point when the total weight within eps of it (including itself) is
// at least minPts. The returned labels are indexed like the input slice.
func Cluster1DWeighted(points []WeightedPoint, eps float64, minPts int) Result {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return Result{Labels: labels}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return points[idx[a]].Value < points[idx[b]].Value })
	sorted := make([]WeightedPoint, n)
	for i, id := range idx {
		sorted[i] = points[id]
	}

	// Sliding-window total weight within eps. hi starts before the first
	// point; the expansion loop always reaches at least i because the
	// distance of a point to itself is 0 <= eps.
	weightWithin := make([]int, n)
	lo, hi := 0, -1
	windowWeight := 0
	for i := 0; i < n; i++ {
		for hi+1 < n && sorted[hi+1].Value-sorted[i].Value <= eps {
			hi++
			windowWeight += sorted[hi].Weight
		}
		for sorted[i].Value-sorted[lo].Value > eps {
			windowWeight -= sorted[lo].Weight
			lo++
		}
		weightWithin[i] = windowWeight
	}

	cluster := -1
	lastCore := -1
	lastCoreCluster := -1
	for i := 0; i < n; i++ {
		if weightWithin[i] < minPts || sorted[i].Weight <= 0 {
			continue
		}
		if lastCore >= 0 && sorted[i].Value-sorted[lastCore].Value <= eps {
			labels[idx[i]] = lastCoreCluster
		} else {
			cluster++
			lastCoreCluster = cluster
			labels[idx[i]] = cluster
		}
		lastCore = i
	}
	// Border points join the nearest core point's cluster if within eps.
	coreIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if weightWithin[i] >= minPts && sorted[i].Weight > 0 {
			coreIdx = append(coreIdx, i)
		}
	}
	for i := 0; i < n; i++ {
		if labels[idx[i]] != Noise || sorted[i].Weight <= 0 {
			continue
		}
		pos := sort.Search(len(coreIdx), func(k int) bool { return sorted[coreIdx[k]].Value >= sorted[i].Value })
		bestDist := eps + 1
		best := -1
		if pos < len(coreIdx) {
			if d := sorted[coreIdx[pos]].Value - sorted[i].Value; d < bestDist {
				best, bestDist = coreIdx[pos], d
			}
		}
		if pos > 0 {
			if d := sorted[i].Value - sorted[coreIdx[pos-1]].Value; d < bestDist {
				best, bestDist = coreIdx[pos-1], d
			}
		}
		if best >= 0 && bestDist <= eps {
			labels[idx[i]] = labels[idx[best]]
		}
	}
	return Result{Labels: labels, NumClusters: cluster + 1}
}

// WeightedInterval summarizes one cluster of a weighted 1-D clustering.
type WeightedInterval struct {
	Lo, Hi float64
	// Weight is the total weight of the cluster's points.
	Weight int
	// Points is the number of distinct values in the cluster.
	Points int
}

// WeightedIntervals summarizes a weighted clustering result per cluster.
func WeightedIntervals(points []WeightedPoint, r Result) []WeightedInterval {
	if r.NumClusters == 0 {
		return nil
	}
	out := make([]WeightedInterval, r.NumClusters)
	init := make([]bool, r.NumClusters)
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		iv := &out[lbl]
		v := points[i].Value
		if !init[lbl] {
			iv.Lo, iv.Hi = v, v
			init[lbl] = true
		} else {
			if v < iv.Lo {
				iv.Lo = v
			}
			if v > iv.Hi {
				iv.Hi = v
			}
		}
		iv.Weight += points[i].Weight
		iv.Points++
	}
	return out
}
