package dbscan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClusterTwoBlobs(t *testing.T) {
	// Two tight 2-D blobs and one far-away noise point.
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
		{100, 100},
	}
	r := Cluster(points, 0.5, 3)
	if r.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", r.NumClusters)
	}
	if r.Labels[0] != r.Labels[1] || r.Labels[0] != r.Labels[3] {
		t.Error("first blob should share a label")
	}
	if r.Labels[4] != r.Labels[6] {
		t.Error("second blob should share a label")
	}
	if r.Labels[0] == r.Labels[4] {
		t.Error("blobs should have distinct labels")
	}
	if r.Labels[7] != Noise {
		t.Error("far point should be noise")
	}
}

func TestClusterEmptyAndSingle(t *testing.T) {
	r := Cluster(nil, 1, 2)
	if r.NumClusters != 0 || len(r.Labels) != 0 {
		t.Error("empty input should produce no clusters")
	}
	r = Cluster([][]float64{{1}}, 1, 2)
	if r.NumClusters != 0 || r.Labels[0] != Noise {
		t.Error("single point with minPts=2 should be noise")
	}
	r = Cluster([][]float64{{1}}, 1, 1)
	if r.NumClusters != 1 || r.Labels[0] != 0 {
		t.Error("single point with minPts=1 should be a cluster")
	}
}

func TestClusterChaining(t *testing.T) {
	// Points spaced exactly eps apart chain into one cluster.
	var points [][]float64
	for i := 0; i < 10; i++ {
		points = append(points, []float64{float64(i)})
	}
	r := Cluster(points, 1.0, 2)
	if r.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1 (chained)", r.NumClusters)
	}
	for i, l := range r.Labels {
		if l != 0 {
			t.Errorf("point %d label = %d", i, l)
		}
	}
}

func TestCluster1DMatchesND(t *testing.T) {
	// Property: the 1-D specialization produces the same partition as the
	// generic implementation (same number of clusters, same grouping).
	f := func(raw []uint16, epsRaw uint8, minPtsRaw uint8) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		values := make([]float64, len(raw))
		points := make([][]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v % 1000)
			points[i] = []float64{values[i]}
		}
		eps := float64(epsRaw%50) + 0.5
		minPts := int(minPtsRaw%5) + 1
		a := Cluster(points, eps, minPts)
		b := Cluster1D(values, eps, minPts)
		if a.NumClusters != b.NumClusters {
			return false
		}
		// Core-point status is deterministic; compute it independently.
		core := make([]bool, len(values))
		for i := range values {
			cnt := 0
			for j := range values {
				if values[i]-values[j] <= eps && values[j]-values[i] <= eps {
					cnt++
				}
			}
			core[i] = cnt >= minPts
		}
		// Noise status must match exactly (a point is noise iff it is
		// neither core nor within eps of a core point); cluster membership
		// must agree for core points. Border points may legitimately be
		// attached to either adjacent cluster (a documented DBSCAN
		// ambiguity), so they are not compared pairwise.
		for i := range values {
			if (a.Labels[i] == Noise) != (b.Labels[i] == Noise) {
				return false
			}
		}
		for i := range values {
			if !core[i] {
				continue
			}
			for j := i + 1; j < len(values); j++ {
				if !core[j] {
					continue
				}
				sameA := a.Labels[i] == a.Labels[j]
				sameB := b.Labels[i] == b.Labels[j]
				if sameA != sameB {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCluster1DDenseRangeAndOutliers(t *testing.T) {
	// A dense run 100..150 plus isolated values far apart.
	var values []float64
	for v := 100; v <= 150; v++ {
		values = append(values, float64(v))
	}
	values = append(values, 500, 900)
	r := Cluster1D(values, 2, 4)
	if r.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", r.NumClusters)
	}
	ivs := Intervals(values, r)
	if len(ivs) != 1 || ivs[0].Lo != 100 || ivs[0].Hi != 150 || ivs[0].Size != 51 {
		t.Errorf("Intervals = %+v", ivs)
	}
	if r.Labels[len(values)-1] != Noise || r.Labels[len(values)-2] != Noise {
		t.Error("isolated values should be noise")
	}
}

func TestCluster1DEmpty(t *testing.T) {
	r := Cluster1D(nil, 1, 2)
	if r.NumClusters != 0 {
		t.Error("empty input should produce no clusters")
	}
	if Intervals(nil, r) != nil {
		t.Error("Intervals of empty result should be nil")
	}
}

func TestCluster1DBorderPoints(t *testing.T) {
	// 0,1,2 are dense (minPts 3, eps 1); 3.5 is within eps... no, 3.5-2 =
	// 1.5 > 1, so it is noise. 2.8 would be a border point of the cluster.
	values := []float64{0, 1, 2, 2.8, 10}
	r := Cluster1D(values, 1, 3)
	if r.NumClusters != 1 {
		t.Fatalf("NumClusters = %d", r.NumClusters)
	}
	if r.Labels[3] != 0 {
		t.Errorf("border point label = %d, want 0", r.Labels[3])
	}
	if r.Labels[4] != Noise {
		t.Error("far point should be noise")
	}
}

func TestIntervalsMultipleClusters(t *testing.T) {
	values := []float64{1, 2, 3, 100, 101, 102, 103}
	r := Cluster1D(values, 1.5, 3)
	ivs := Intervals(values, r)
	if len(ivs) != 2 {
		t.Fatalf("Intervals = %+v", ivs)
	}
	if ivs[0].Lo != 1 || ivs[0].Hi != 3 || ivs[1].Lo != 100 || ivs[1].Hi != 103 {
		t.Errorf("Intervals = %+v", ivs)
	}
}

func TestClusterUniformHistogramUseCase(t *testing.T) {
	// The mining step's use of DBSCAN on a histogram: (value, count) pairs
	// where a contiguous range of values has similar counts clusters
	// together when counts are normalized.
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	// Uniform-ish range: values 0..99 with counts ~10.
	for v := 0; v < 100; v++ {
		points = append(points, []float64{float64(v), 10 + float64(rng.Intn(3))})
	}
	// A spike far away in count space.
	points = append(points, []float64{200, 1000})
	r := Cluster(points, 5, 4)
	if r.NumClusters < 1 {
		t.Fatal("expected at least one cluster")
	}
	if r.Labels[len(points)-1] != Noise {
		t.Error("spike should be noise relative to the uniform range")
	}
}

func BenchmarkCluster1D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 2000)
	for i := range values {
		values[i] = rng.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster1D(values, 5, 4)
	}
}

func BenchmarkClusterND(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := make([][]float64, 500)
	for i := range points {
		points[i] = []float64{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(points, 5, 4)
	}
}
