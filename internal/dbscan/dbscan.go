// Package dbscan implements the DBSCAN density-based clustering algorithm
// of Ester, Kriegel, Sander and Xu (KDD 1996), which Entropy/IP uses during
// segment mining (§4.3 of the paper) to find dense ranges of segment values
// and ranges of values that are uniformly distributed in the histogram.
//
// The package provides a generic n-dimensional implementation and an
// optimized 1-dimensional variant (Cluster1D) that exploits sortedness; the
// two produce identical clusters for 1-D inputs.
package dbscan

import (
	"math"
	"sort"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Result holds the output of a clustering run.
type Result struct {
	// Labels[i] is the cluster index of input point i (0-based), or Noise.
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
}

// Cluster runs DBSCAN on n-dimensional points using Euclidean distance.
//
// eps is the neighborhood radius and minPts the minimum number of points
// (including the point itself) required to form a dense region. The
// implementation is the textbook O(n²) algorithm, which is appropriate for
// the segment-mining workloads in this repository (at most a few thousand
// distinct values per segment).
func Cluster(points [][]float64, eps float64, minPts int) Result {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	cluster := 0

	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if euclid(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}

	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nb := neighbors(i)
		if len(nb) < minPts {
			continue // noise (may later be adopted as a border point)
		}
		// Start a new cluster and expand it.
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if !visited[j] {
				visited[j] = true
				jnb := neighbors(j)
				if len(jnb) >= minPts {
					queue = append(queue, jnb...)
				}
			}
			if labels[j] == Noise {
				labels[j] = cluster
			}
		}
		cluster++
	}
	return Result{Labels: labels, NumClusters: cluster}
}

func euclid(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Cluster1D runs DBSCAN over scalar values. It produces the same clusters
// as Cluster with 1-D points but runs in O(n log n) by sorting.
func Cluster1D(values []float64, eps float64, minPts int) Result {
	n := len(values)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return Result{Labels: labels}
	}
	// Sort indices by value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	sorted := make([]float64, n)
	for i, id := range idx {
		sorted[i] = values[id]
	}

	// neighborCount[i] = number of points within eps of sorted[i].
	neighborCount := make([]int, n)
	lo, hi := 0, 0
	for i := 0; i < n; i++ {
		for lo < n && sorted[i]-sorted[lo] > eps {
			lo++
		}
		if hi < i {
			hi = i
		}
		for hi+1 < n && sorted[hi+1]-sorted[i] <= eps {
			hi++
		}
		neighborCount[i] = hi - lo + 1
	}

	// A cluster is a maximal run of points chained through core points:
	// consecutive (in sorted order) points belong to the same cluster if
	// the gap between them is <= eps and at least one endpoint of the gap
	// chain is reachable from a core point. We reproduce DBSCAN semantics:
	// border points join the cluster of a core point within eps; noise
	// points otherwise.
	cluster := -1
	lastCore := -1        // index (sorted order) of the most recent core point
	lastCoreCluster := -1 // its cluster
	for i := 0; i < n; i++ {
		if neighborCount[i] < minPts {
			continue // not a core point; handled as border below
		}
		if lastCore >= 0 && sorted[i]-sorted[lastCore] <= eps {
			// Same cluster as the previous core point (density-connected).
			labels[idx[i]] = lastCoreCluster
		} else {
			cluster++
			labels[idx[i]] = cluster
			lastCoreCluster = cluster
		}
		lastCore = i
	}
	// Assign border points: any non-core point within eps of a core point
	// joins that core point's cluster (ties go to the nearer core point,
	// matching the "first discovered" rule closely enough for our use).
	coreIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if neighborCount[i] >= minPts {
			coreIdx = append(coreIdx, i)
		}
	}
	for i := 0; i < n; i++ {
		if neighborCount[i] >= minPts {
			continue
		}
		// Find nearest core point by binary search over coreIdx.
		pos := sort.Search(len(coreIdx), func(k int) bool { return sorted[coreIdx[k]] >= sorted[i] })
		best, bestDist := -1, math.Inf(1)
		if pos < len(coreIdx) {
			if d := sorted[coreIdx[pos]] - sorted[i]; d < bestDist {
				best, bestDist = coreIdx[pos], d
			}
		}
		if pos > 0 {
			if d := sorted[i] - sorted[coreIdx[pos-1]]; d < bestDist {
				best, bestDist = coreIdx[pos-1], d
			}
		}
		if best >= 0 && bestDist <= eps {
			labels[idx[i]] = labels[idx[best]]
		}
	}
	return Result{Labels: labels, NumClusters: cluster + 1}
}

// Interval is a closed range of values belonging to one cluster.
type Interval struct {
	Lo, Hi float64
	// Size is the number of points in the cluster.
	Size int
}

// Intervals summarizes a 1-D clustering result as the [min, max] interval
// of each cluster, ordered by cluster label.
func Intervals(values []float64, r Result) []Interval {
	if r.NumClusters == 0 {
		return nil
	}
	out := make([]Interval, r.NumClusters)
	for i := range out {
		out[i] = Interval{Lo: math.Inf(1), Hi: math.Inf(-1)}
	}
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		iv := &out[lbl]
		if values[i] < iv.Lo {
			iv.Lo = values[i]
		}
		if values[i] > iv.Hi {
			iv.Hi = values[i]
		}
		iv.Size++
	}
	return out
}
