package dbscan

import (
	"testing"
	"testing/quick"
)

func TestCluster1DWeightedEquivalentToExpanded(t *testing.T) {
	// Property: clustering weighted points gives the same core structure as
	// clustering the expanded multiset.
	f := func(raw []uint8, epsRaw, minPtsRaw uint8) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		// Build weighted points with weights 1..4 over values 0..49.
		type vw struct {
			v float64
			w int
		}
		var wpoints []WeightedPoint
		var expanded []float64
		seen := map[float64]int{}
		for i, r := range raw {
			v := float64(r % 50)
			w := int(raw[(i+1)%len(raw)]%4) + 1
			seen[v] += w
		}
		for v, w := range seen {
			wpoints = append(wpoints, WeightedPoint{Value: v, Weight: w})
			for k := 0; k < w; k++ {
				expanded = append(expanded, v)
			}
		}
		if len(wpoints) == 0 {
			return true
		}
		eps := float64(epsRaw%10) + 0.5
		minPts := int(minPtsRaw%6) + 1
		a := Cluster1DWeighted(wpoints, eps, minPts)
		b := Cluster1D(expanded, eps, minPts)
		if a.NumClusters != b.NumClusters {
			return false
		}
		// Each weighted point's noise status must match the status of the
		// corresponding expanded values.
		expIdx := map[float64]int{}
		for i, v := range expanded {
			expIdx[v] = i
		}
		for i, p := range wpoints {
			if (a.Labels[i] == Noise) != (b.Labels[expIdx[p.Value]] == Noise) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCluster1DWeightedBasic(t *testing.T) {
	points := []WeightedPoint{
		{Value: 10, Weight: 100},
		{Value: 11, Weight: 50},
		{Value: 500, Weight: 1},
		{Value: 501, Weight: 1},
	}
	r := Cluster1DWeighted(points, 2, 10)
	if r.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", r.NumClusters)
	}
	if r.Labels[0] != 0 || r.Labels[1] != 0 {
		t.Error("heavy points should cluster")
	}
	if r.Labels[2] != Noise || r.Labels[3] != Noise {
		t.Error("light points should be noise with minPts=10")
	}
	ivs := WeightedIntervals(points, r)
	if len(ivs) != 1 || ivs[0].Lo != 10 || ivs[0].Hi != 11 || ivs[0].Weight != 150 || ivs[0].Points != 2 {
		t.Errorf("WeightedIntervals = %+v", ivs)
	}
}

func TestCluster1DWeightedEmptyAndZeroWeight(t *testing.T) {
	r := Cluster1DWeighted(nil, 1, 1)
	if r.NumClusters != 0 {
		t.Error("empty input should have no clusters")
	}
	if WeightedIntervals(nil, r) != nil {
		t.Error("WeightedIntervals of empty should be nil")
	}
	// Zero-weight points never become cores and stay noise.
	r = Cluster1DWeighted([]WeightedPoint{{Value: 1, Weight: 0}}, 1, 1)
	if r.NumClusters != 0 || r.Labels[0] != Noise {
		t.Error("zero-weight point should be noise")
	}
}

func TestCluster1DWeightedTwoRanges(t *testing.T) {
	var points []WeightedPoint
	for v := 0; v < 20; v++ {
		points = append(points, WeightedPoint{Value: float64(v), Weight: 5})
	}
	for v := 100; v < 120; v++ {
		points = append(points, WeightedPoint{Value: float64(v), Weight: 5})
	}
	r := Cluster1DWeighted(points, 1.5, 8)
	if r.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", r.NumClusters)
	}
	ivs := WeightedIntervals(points, r)
	if ivs[0].Lo != 0 || ivs[0].Hi != 19 || ivs[1].Lo != 100 || ivs[1].Hi != 119 {
		t.Errorf("WeightedIntervals = %+v", ivs)
	}
}
