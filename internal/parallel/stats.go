package parallel

import "sync/atomic"

// Package-level scheduling counters, exported to the observability plane
// through Snapshot (eipserved renders them under eip_parallel_*). They
// are plain atomics so tracking costs two adds per dispatch call — noise
// next to the goroutines each call spawns — and the package keeps its
// zero dependencies.
var (
	statJobs    atomic.Uint64
	statTasks   atomic.Uint64
	statRunning atomic.Int64
)

// Stats is a snapshot of the package's scheduling counters.
type Stats struct {
	// Jobs counts dispatch calls (ForEach, ForEachErr, ForEachShard,
	// MapShards — the wrappers Map, MapReduce and ForEachShardErr count
	// through the primitive they delegate to).
	Jobs uint64 `json:"jobs"`
	// Tasks counts work units dispatched: indices for the per-index
	// primitives, shards for the sharded ones.
	Tasks uint64 `json:"tasks"`
	// Running is the number of workers currently executing user code
	// (including the calling goroutine of a sequential fallback).
	Running int64 `json:"running"`
}

// Snapshot returns the current scheduling counters.
func Snapshot() Stats {
	return Stats{
		Jobs:    statJobs.Load(),
		Tasks:   statTasks.Load(),
		Running: statRunning.Load(),
	}
}

// trackBegin/trackEnd bracket one dispatch call running `workers`
// concurrent executors over `tasks` work units. Passing workers to
// trackEnd through the deferred call keeps the pair allocation-free.
func trackBegin(workers, tasks int) {
	statJobs.Add(1)
	statTasks.Add(uint64(tasks))
	statRunning.Add(int64(workers))
}

func trackEnd(workers int) {
	statRunning.Add(int64(-workers))
}
