// Package parallel provides the bounded worker pools that the Entropy/IP
// training pipeline runs on. Every stage of model building — entropy
// profiling, per-segment mining, categorical encoding, CPT counting and
// structure-search scoring — is embarrassingly parallel over addresses or
// over segments; this package centralizes the scheduling so that each stage
// gets the same three guarantees:
//
//   - bounded concurrency: at most `workers` goroutines run user code, so
//     a training job inside eipserved's worker pool cannot oversubscribe
//     the machine beyond its configured share;
//   - deterministic results: work is either dispatched by index with
//     results stored at that index, or split into contiguous shards whose
//     partial results the caller merges in shard order — so the outcome is
//     bit-identical regardless of the worker count (the property the
//     model-determinism tests in internal/core assert);
//   - cancellation: the Err variants stop dispatching new work when the
//     context is done or a task fails, and report the same error a
//     sequential loop would have reported first.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0) (all available cores).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Shard is a contiguous index range [Start, End) of a larger input.
type Shard struct {
	Start, End int
}

// Len returns the number of indices in the shard.
func (s Shard) Len() int { return s.End - s.Start }

// Shards partitions [0, n) into at most `workers` contiguous, near-equal
// shards, in index order. It returns nil when n <= 0. workers <= 0 selects
// GOMAXPROCS.
func Shards(n, workers int) []Shard {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]Shard, 0, w)
	// Distribute the remainder over the first n%w shards so sizes differ
	// by at most one.
	base, rem := n/w, n%w
	start := 0
	for i := 0; i < w; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Shard{Start: start, End: start + size})
		start += size
	}
	return out
}

// ForEach invokes fn(i) for every i in [0, n), running at most `workers`
// invocations concurrently. Indices are dispatched dynamically in
// ascending order, which balances skewed per-index costs (e.g. windowed
// entropy positions, segments of very different arity). fn must be safe
// for concurrent invocation with distinct indices. With workers resolved
// to 1 (or n <= 1) everything runs on the calling goroutine.
func ForEach(workers, n int, fn func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if n > 0 {
		trackBegin(w, n)
		defer trackEnd(w)
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach with cancellation: it stops dispatching new
// indices once the context is done or any invocation fails, waits for
// in-flight invocations, and returns the error of the lowest failing
// index — the same error a sequential loop over [0, n) would have
// returned first. (Indices are dispatched in ascending order, so every
// index below a failing one has been dispatched and its outcome is
// included in the minimum.) A nil ctx means no cancellation.
func ForEachErr(ctx context.Context, workers, n int, fn func(i int) error) error {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if n > 0 {
		trackBegin(w, n)
		defer trackEnd(w)
	}
	done := func() bool { return ctx != nil && ctx.Err() != nil }
	if w <= 1 {
		for i := 0; i < n; i++ {
			if done() {
				return ctx.Err()
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !stop.Load() && !done() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if done() {
		return ctx.Err()
	}
	return nil
}

// Map computes out[i] = fn(i) for every i in [0, n) across at most
// `workers` goroutines. The result order is the index order, so the output
// is identical for any worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// ForEachShard splits [0, n) into at most `workers` contiguous shards and
// invokes fn once per shard, each on its own goroutine. Use it when the
// per-index work is too small to amortize dynamic dispatch (counting
// loops over large address slices).
func ForEachShard(workers, n int, fn func(s Shard)) {
	shards := Shards(n, workers)
	if len(shards) > 0 {
		trackBegin(len(shards), len(shards))
		defer trackEnd(len(shards))
	}
	if len(shards) <= 1 {
		for _, s := range shards {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for _, s := range shards {
		go func(s Shard) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// ForEachShardErr is ForEachShard with cancellation. It returns the error
// of the lowest-indexed failing shard, which — shards being contiguous and
// ordered — carries the error a sequential scan would have hit first,
// provided fn reports the first failure within its shard.
func ForEachShardErr(ctx context.Context, workers, n int, fn func(s Shard) error) error {
	shards := Shards(n, workers)
	return ForEachErr(ctx, len(shards), len(shards), func(i int) error {
		return fn(shards[i])
	})
}

// MapShards runs work once per contiguous shard of [0, n) and returns the
// per-shard results in shard order, ready for a deterministic left-to-right
// merge by the caller.
func MapShards[T any](workers, n int, work func(s Shard) T) []T {
	shards := Shards(n, workers)
	out := make([]T, len(shards))
	if len(shards) > 0 {
		trackBegin(len(shards), len(shards))
		defer trackEnd(len(shards))
	}
	if len(shards) <= 1 {
		for i, s := range shards {
			out[i] = work(s)
		}
		return out
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for i, s := range shards {
		go func(i int, s Shard) {
			defer wg.Done()
			out[i] = work(s)
		}(i, s)
	}
	wg.Wait()
	return out
}

// MapReduce runs work once per contiguous shard of [0, n) and folds the
// per-shard results left to right with merge. The fold order is the shard
// order, so even non-commutative (e.g. floating-point) merges are
// deterministic for any worker count. It returns the zero value of T when
// n <= 0.
func MapReduce[T any](workers, n int, work func(s Shard) T, merge func(into, from T) T) T {
	parts := MapShards(workers, n, work)
	var acc T
	for i, p := range parts {
		if i == 0 {
			acc = p
			continue
		}
		acc = merge(acc, p)
	}
	return acc
}
