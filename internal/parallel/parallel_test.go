package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got < 1 {
		t.Fatalf("Workers(-3) = %d, want >= 1", got)
	}
}

func TestShards(t *testing.T) {
	cases := []struct {
		n, workers int
		want       int // number of shards
	}{
		{0, 4, 0},
		{-1, 4, 0},
		{1, 4, 1},
		{4, 4, 4},
		{10, 3, 3},
		{10, 100, 10},
	}
	for _, c := range cases {
		shards := Shards(c.n, c.workers)
		if len(shards) != c.want {
			t.Fatalf("Shards(%d, %d): %d shards, want %d", c.n, c.workers, len(shards), c.want)
		}
		// Shards must tile [0, n) exactly, in order, with sizes differing
		// by at most one.
		pos, min, max := 0, c.n+1, 0
		for _, s := range shards {
			if s.Start != pos || s.End <= s.Start {
				t.Fatalf("Shards(%d, %d): bad shard %+v at pos %d", c.n, c.workers, s, pos)
			}
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
			pos = s.End
		}
		if c.n > 0 && pos != c.n {
			t.Fatalf("Shards(%d, %d): covers [0,%d)", c.n, c.workers, pos)
		}
		if len(shards) > 0 && max-min > 1 {
			t.Fatalf("Shards(%d, %d): shard sizes differ by %d", c.n, c.workers, max-min)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		var hits = make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestMapDeterministic(t *testing.T) {
	n := 513
	want := Map(1, n, func(i int) int { return i * i })
	for _, workers := range []int{2, 3, 16} {
		got := Map(workers, n, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachErrReturnsFirstError(t *testing.T) {
	// Every index >= 100 fails; the reported error must be index 100's,
	// exactly as a sequential loop would report, for any worker count.
	for _, workers := range []int{1, 2, 8} {
		err := ForEachErr(context.Background(), workers, 1000, func(i int) error {
			if i >= 100 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 100" {
			t.Fatalf("workers=%d: err = %v, want fail at 100", workers, err)
		}
	}
}

func TestForEachErrNilOnSuccess(t *testing.T) {
	if err := ForEachErr(context.Background(), 4, 100, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if err := ForEachErr(nil, 4, 100, func(int) error { return nil }); err != nil {
		t.Fatalf("nil ctx: err = %v", err)
	}
}

func TestForEachErrCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachErr(ctx, 4, 1_000_000, func(i int) error {
		if ran.Add(1) == 50 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 1_000_000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestForEachShardCoversAll(t *testing.T) {
	for _, workers := range []int{1, 3, 9} {
		n := 1001
		covered := make([]atomic.Int32, n)
		ForEachShard(workers, n, func(s Shard) {
			for i := s.Start; i < s.End; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, covered[i].Load())
			}
		}
	}
}

func TestForEachShardErrLowestShardWins(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEachShardErr(context.Background(), workers, 800, func(s Shard) error {
			for i := s.Start; i < s.End; i++ {
				if i >= 300 {
					return fmt.Errorf("bad index %d", i)
				}
			}
			return nil
		})
		if err == nil || err.Error() != "bad index 300" {
			t.Fatalf("workers=%d: err = %v, want bad index 300", workers, err)
		}
	}
}

func TestMapReduceDeterministicOrder(t *testing.T) {
	// Summing floats is order-sensitive; MapReduce must fold shards left to
	// right so any worker count reproduces the single-shard fold over the
	// same shard boundaries. Compare against an explicit sequential fold of
	// the same shards.
	n := 10_000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	sum := func(s Shard) float64 {
		acc := 0.0
		for i := s.Start; i < s.End; i++ {
			acc += vals[i]
		}
		return acc
	}
	merge := func(a, b float64) float64 { return a + b }
	for _, workers := range []int{1, 2, 5, 32} {
		shards := Shards(n, workers)
		want := 0.0
		for i, s := range shards {
			if i == 0 {
				want = sum(s)
			} else {
				want = merge(want, sum(s))
			}
		}
		got := MapReduce(workers, n, sum, merge)
		if got != want {
			t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
		}
	}
	var zero float64
	if got := MapReduce(4, 0, sum, merge); got != zero {
		t.Fatalf("empty MapReduce = %v, want 0", got)
	}
}
