package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"entropyip/internal/ip6"
)

func testAddrs(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = ip6.AddrFromUint64s(rng.Uint64(), rng.Uint64())
	}
	return out
}

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{Flags: 0, Streams: 1, Seed: 0},
		{Flags: FlagPrefixes, Streams: 1, Seed: -1},
		{Flags: FlagBatch, Streams: 256, Seed: 1<<63 - 1},
		{Flags: FlagBatch | FlagPrefixes, Streams: 7, Seed: -1 << 63},
	}
	for _, h := range cases {
		b := AppendHeader(nil, h)
		if len(b) != HeaderSize {
			t.Fatalf("header length = %d, want %d", len(b), HeaderSize)
		}
		got, err := ParseHeader(b)
		if err != nil {
			t.Fatalf("ParseHeader(%+v): %v", h, err)
		}
		if got != h {
			t.Errorf("round trip = %+v, want %+v", got, h)
		}
	}
}

func TestParseHeaderRejects(t *testing.T) {
	good := AppendHeader(nil, Header{Streams: 1, Seed: 42})
	mut := func(i int, v byte) []byte {
		b := append([]byte(nil), good...)
		b[i] = v
		return b
	}
	cases := []struct {
		name string
		b    []byte
		err  error
	}{
		{"short", good[:8], ErrBadMagic},
		{"magic", mut(0, 'X'), ErrBadMagic},
		{"version", mut(4, 9), ErrBadVersion},
		{"flags", mut(5, 0x80), ErrBadFlags},
		{"zero streams", mut(7, 0), ErrBadStreams},
		{"multi without batch", mut(7, 2), ErrBadStreams},
	}
	for _, tc := range cases {
		if _, err := ParseHeader(tc.b); !errors.Is(err, tc.err) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.err)
		}
	}
	// Over-limit stream count with the batch flag set.
	b := AppendHeader(nil, Header{Flags: FlagBatch, Streams: 1, Seed: 0})
	b[6], b[7] = 0x01, 0x01 // 257
	if _, err := ParseHeader(b); !errors.Is(err, ErrBadStreams) {
		t.Errorf("257 streams: err = %v, want ErrBadStreams", err)
	}
}

// TestWriterReaderRoundTrip drives addresses and prefixes through a
// Writer and back through a Reader, across frame boundaries.
func TestWriterReaderRoundTrip(t *testing.T) {
	addrs := testAddrs(10_000, 1)
	var body bytes.Buffer
	body.Write(AppendHeader(nil, Header{Streams: 1, Seed: 99}))
	w := NewWriter(&body, 0, false, 0)
	for _, a := range addrs {
		if err := w.AddAddr(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.Seed != 99 || h.Streams != 1 || h.Prefixes() {
		t.Fatalf("header = %+v", h)
	}
	var got []ip6.Addr
	ended := false
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch f.Kind {
		case KindAddrs:
			if f.Count > MaxFrameRecords {
				t.Fatalf("frame count %d over limit", f.Count)
			}
			for i := 0; i < f.Count; i++ {
				got = append(got, f.Addr(i))
			}
		case KindEnd:
			ended = true
		default:
			t.Fatalf("unexpected frame kind 0x%02x", f.Kind)
		}
	}
	if !ended {
		t.Error("no End frame")
	}
	if len(got) != len(addrs) {
		t.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d = %s, want %s", i, got[i], addrs[i])
		}
	}
}

func TestWriterReaderPrefixes(t *testing.T) {
	want := []ip6.Prefix{
		ip6.MustParsePrefix("2001:db8::/32"),
		ip6.MustParsePrefix("2001:db8:1:2::/64"),
		ip6.MustParsePrefix("::/0"),
		ip6.MustParsePrefix("ff::1/128"),
	}
	var body bytes.Buffer
	body.Write(AppendHeader(nil, Header{Flags: FlagPrefixes, Streams: 1}))
	w := NewWriter(&body, 0, true, 2) // 2 records per frame: forces several frames
	for _, p := range want {
		if err := w.AddPrefix(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Header().Prefixes() {
		t.Fatal("prefix flag lost")
	}
	var got []ip6.Prefix
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind == KindPrefixes {
			for i := 0; i < f.Count; i++ {
				got = append(got, f.Prefix(i))
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d prefixes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("prefix %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestBatchInterleaving checks that frames of several streams written
// through one shared sink demultiplex back into the per-stream record
// sequences, with Seed/End bookkeeping intact.
func TestBatchInterleaving(t *testing.T) {
	const streams = 3
	perStream := [][]ip6.Addr{testAddrs(100, 1), testAddrs(7, 2), testAddrs(301, 3)}
	seeds := []int64{11, -22, 33}

	var body bytes.Buffer
	body.Write(AppendHeader(nil, Header{Flags: FlagBatch, Streams: streams, Seed: seeds[0]}))
	ws := make([]*Writer, streams)
	for i := range ws {
		ws[i] = NewWriter(&body, i, false, 16)
		if err := ws[i].Seed(seeds[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin the streams so frames genuinely interleave.
	idx := [streams]int{}
	for done := 0; done < streams; {
		done = 0
		for s := 0; s < streams; s++ {
			if idx[s] >= len(perStream[s]) {
				done++
				continue
			}
			end := idx[s] + 10
			if end > len(perStream[s]) {
				end = len(perStream[s])
			}
			for _, a := range perStream[s][idx[s]:end] {
				if err := ws[s].AddAddr(a); err != nil {
					t.Fatal(err)
				}
			}
			idx[s] = end
		}
	}
	for _, w := range ws {
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); !h.Batch() || h.Streams != streams {
		t.Fatalf("header = %+v", h)
	}
	got := make([][]ip6.Addr, streams)
	gotSeeds := make([]int64, streams)
	ends := 0
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch f.Kind {
		case KindAddrs:
			for i := 0; i < f.Count; i++ {
				got[f.Stream] = append(got[f.Stream], f.Addr(i))
			}
		case KindSeed:
			gotSeeds[f.Stream] = f.Seed()
		case KindEnd:
			ends++
		}
	}
	if ends != streams {
		t.Errorf("got %d End frames, want %d", ends, streams)
	}
	for s := 0; s < streams; s++ {
		if gotSeeds[s] != seeds[s] {
			t.Errorf("stream %d seed = %d, want %d", s, gotSeeds[s], seeds[s])
		}
		if len(got[s]) != len(perStream[s]) {
			t.Fatalf("stream %d: %d addrs, want %d", s, len(got[s]), len(perStream[s]))
		}
		for i := range got[s] {
			if got[s][i] != perStream[s][i] {
				t.Fatalf("stream %d addr %d mismatch", s, i)
			}
		}
	}
}

func TestErrorFrame(t *testing.T) {
	var body bytes.Buffer
	body.Write(AppendHeader(nil, Header{Streams: 1}))
	w := NewWriter(&body, 0, false, 0)
	if err := w.AddAddr(ip6.Addr{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Error("model support exhausted   badly"); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.Next()
	if err != nil || f.Kind != KindAddrs || f.Count != 1 {
		t.Fatalf("first frame = %+v, %v (Error must flush pending data first)", f, err)
	}
	f, err = r.Next()
	if err != nil || f.Kind != KindError {
		t.Fatalf("second frame = %+v, %v", f, err)
	}
	if f.Message() != "model support exhausted   badly" {
		t.Errorf("message = %q", f.Message())
	}
}

// TestWriterErrorTruncates pins the 64 KiB - 1 cap on error messages.
func TestWriterErrorTruncates(t *testing.T) {
	var body bytes.Buffer
	body.Write(AppendHeader(nil, Header{Streams: 1}))
	w := NewWriter(&body, 0, false, 0)
	if err := w.Error(strings.Repeat("x", 1<<17)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Message()) != maxErrorLen {
		t.Errorf("message length = %d, want %d", len(f.Message()), maxErrorLen)
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	hdr := AppendHeader(nil, Header{Streams: 1})
	frame := func(b ...byte) []byte { return append(append([]byte(nil), hdr...), b...) }
	cases := []struct {
		name string
		body []byte
		err  error
	}{
		{"unknown kind", frame(0x7f, 0, 0, 0), ErrBadFrame},
		{"stream out of range", frame(KindAddrs, 1, 0, 1), ErrBadFrame},
		{"empty data frame", frame(KindAddrs, 0, 0, 0), ErrBadFrame},
		{"oversized count", frame(KindAddrs, 0, 0xff, 0xff), ErrFrameTooBig},
		{"truncated header", frame(KindAddrs, 0), ErrBadFrame},
		{"truncated payload", frame(KindAddrs, 0, 0, 2, 1, 2, 3), ErrBadFrame},
		{"seed wrong count", frame(KindSeed, 0, 0, 2), ErrBadFrame},
		{"end with count", frame(KindEnd, 0, 0, 1), ErrBadFrame},
		{"prefix bits over 128", append(frame(KindPrefixes, 0, 0, 1), append(make([]byte, 16), 129)...), ErrBadFrame},
	}
	for _, tc := range cases {
		r, err := NewReader(bytes.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: header: %v", tc.name, err)
		}
		if _, err := r.Next(); !errors.Is(err, tc.err) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.err)
		}
	}
}

// TestReaderReset checks a pooled Reader decodes a second body cleanly.
func TestReaderReset(t *testing.T) {
	mk := func(seed int64, n int) []byte {
		var b bytes.Buffer
		b.Write(AppendHeader(nil, Header{Streams: 1, Seed: seed}))
		w := NewWriter(&b, 0, false, 0)
		for _, a := range testAddrs(n, seed) {
			if err := w.AddAddr(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	r, err := NewReader(bytes.NewReader(mk(1, 10)))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Reset(bytes.NewReader(mk(2, 5000))); err != nil {
		t.Fatal(err)
	}
	if r.Header().Seed != 2 {
		t.Fatalf("second header seed = %d", r.Header().Seed)
	}
	n := 0
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind == KindAddrs {
			n += f.Count
		}
	}
	if n != 5000 {
		t.Fatalf("second body decoded %d addrs, want 5000", n)
	}
}

// TestWriterZeroAlloc pins the encode path's allocation contract: after
// Reset, adding records and flushing frames into a discard sink must not
// allocate.
func TestWriterZeroAlloc(t *testing.T) {
	addrs := testAddrs(MaxFrameRecords+17, 1)
	w := NewWriter(io.Discard, 0, false, 0)
	allocs := testing.AllocsPerRun(100, func() {
		w.Reset(io.Discard, 0, false, 0)
		for _, a := range addrs {
			if err := w.AddAddr(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("encode path allocates %.1f/run, want 0", allocs)
	}
}

func TestTraceFrameRoundTrip(t *testing.T) {
	id := [16]byte{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6,
		0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}
	var body bytes.Buffer
	body.Write(AppendHeader(nil, Header{Streams: 1}))
	body.Write(AppendTraceFrame(nil, 0, id))
	w := NewWriter(&body, 0, false, 0)
	if err := w.AddAddr(ip6.Addr{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Trace(id); err != nil { // Trace must flush pending data first
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.Next()
	if err != nil || f.Kind != KindTrace || f.Count != 1 {
		t.Fatalf("first frame = %+v, %v", f, err)
	}
	if f.TraceID() != id {
		t.Fatalf("trace id = %x, want %x", f.TraceID(), id)
	}
	f, err = r.Next()
	if err != nil || f.Kind != KindAddrs || f.Count != 1 {
		t.Fatalf("second frame = %+v, %v", f, err)
	}
	f, err = r.Next()
	if err != nil || f.Kind != KindTrace || f.TraceID() != id {
		t.Fatalf("third frame = %+v, %v (Writer.Trace)", f, err)
	}
	if f, err = r.Next(); err != nil || f.Kind != KindEnd {
		t.Fatalf("fourth frame = %+v, %v", f, err)
	}
}

func TestTraceFrameRejectsBadCount(t *testing.T) {
	body := AppendHeader(nil, Header{Streams: 1})
	body = append(body, KindTrace, 0, 0, 2) // count must be 1
	r, err := NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}
