package wire

import (
	"bytes"
	"io"
	"testing"

	"entropyip/internal/ip6"
)

// FuzzReader throws arbitrary bodies at the frame decoder. The decoder
// must never panic, never hand back out-of-range record slices, and
// always terminate (io.EOF or an error) — it is the parser that faces
// raw network input on POST /observe.
func FuzzReader(f *testing.F) {
	// Seed corpus (checked in under testdata/fuzz/FuzzReader): a valid
	// single-stream body, a prefix body, a batch body with seeds and an
	// error frame, plus truncations and near-misses.
	var valid bytes.Buffer
	valid.Write(AppendHeader(nil, Header{Streams: 1, Seed: 7}))
	w := NewWriter(&valid, 0, false, 3)
	for _, a := range testAddrs(10, 1) {
		_ = w.AddAddr(a)
	}
	_ = w.End()
	f.Add(valid.Bytes())

	var prefixed bytes.Buffer
	prefixed.Write(AppendHeader(nil, Header{Flags: FlagPrefixes, Streams: 1}))
	pw := NewWriter(&prefixed, 0, true, 2)
	for _, a := range testAddrs(5, 2) {
		_ = pw.AddPrefix(ip6.PrefixFrom(a, 64))
	}
	_ = pw.End()
	f.Add(prefixed.Bytes())

	var batch bytes.Buffer
	batch.Write(AppendHeader(nil, Header{Flags: FlagBatch, Streams: 2, Seed: 1}))
	b0 := NewWriter(&batch, 0, false, 4)
	b1 := NewWriter(&batch, 1, false, 4)
	_ = b0.Seed(1)
	_ = b1.Seed(2)
	for i, a := range testAddrs(9, 3) {
		if i%2 == 0 {
			_ = b0.AddAddr(a)
		} else {
			_ = b1.AddAddr(a)
		}
	}
	_ = b0.End()
	_ = b1.Error("boom")
	f.Add(batch.Bytes())

	f.Add(valid.Bytes()[:HeaderSize])                       // header only
	f.Add(valid.Bytes()[:HeaderSize+2])                     // torn frame header
	f.Add(valid.Bytes()[:len(valid.Bytes())-5])             // torn payload
	f.Add([]byte("EIP6"))                                   // short header
	f.Add([]byte("{\"addr\":\"2001:db8::1\"}\n"))           // NDJSON mislabeled as binary
	f.Add(append([]byte("EIP7"), valid.Bytes()[4:]...))     // bad magic
	f.Add(append([]byte("EIP6\x02"), valid.Bytes()[5:]...)) // bad version

	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := NewReader(bytes.NewReader(body))
		if err != nil {
			return
		}
		h := r.Header()
		if h.Streams < 1 || h.Streams > MaxStreams {
			t.Fatalf("accepted header with %d streams", h.Streams)
		}
		for i := 0; i < 1<<16; i++ {
			fr, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if fr.Stream < 0 || fr.Stream >= h.Streams {
				t.Fatalf("frame stream %d out of %d", fr.Stream, h.Streams)
			}
			switch fr.Kind {
			case KindAddrs:
				if len(fr.Payload) != fr.Count*16 {
					t.Fatalf("addrs payload %d for count %d", len(fr.Payload), fr.Count)
				}
				_ = fr.Addr(0)
				_ = fr.Addr(fr.Count - 1)
			case KindPrefixes:
				if len(fr.Payload) != fr.Count*17 {
					t.Fatalf("prefix payload %d for count %d", len(fr.Payload), fr.Count)
				}
				for i := 0; i < fr.Count; i++ {
					p := fr.Prefix(i)
					if p.Bits() > 128 {
						t.Fatalf("decoded prefix length %d", p.Bits())
					}
				}
			case KindSeed:
				_ = fr.Seed()
			case KindError:
				_ = fr.Message()
			}
		}
		// A body of at most a few KiB cannot hold 65536 frames (each is
		// >= 4 bytes); reaching here means the decoder failed to make
		// progress.
		if len(body) < 1<<18 {
			t.Fatal("decoder did not terminate")
		}
	})
}
