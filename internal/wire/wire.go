// Package wire implements the framed binary encoding of the Entropy/IP
// serving API: raw 16-byte addresses in length-prefixed frames behind a
// fixed header, negotiated on /generate and /observe via the
// application/x-entropyip-addrs media type.
//
// The text encodings (NDJSON, dataset lines) spend most of the serving
// plane's cycles formatting and parsing hexadecimal text — ~40 bytes and
// a zero-run scan per address each way. The binary encoding is a memcpy:
// a candidate address costs its 16 network-order bytes (17 with a prefix
// length), so a scanner fleet pulls candidates at line rate and pushes
// observations back the same way.
//
// # Stream layout
//
//	+----------------------+
//	| header (16 bytes)    |  once per HTTP body
//	+----------------------+
//	| frame | frame | ...  |  until End/Error frame or clean EOF
//	+----------------------+
//
// Header (16 bytes, all multi-byte fields big-endian):
//
//	offset size field
//	0      4    magic "EIP6"
//	4      1    version (currently 1)
//	5      1    flags (bit 0: prefixes, bit 1: batch)
//	6      2    streams: number of interleaved streams N (1 unless batch)
//	8      8    seed of stream 0, echoed for replay (0 on /observe bodies)
//
// Frame (4-byte header + payload):
//
//	offset size field
//	0      1    kind
//	1      1    stream index (0..N-1)
//	2      2    count
//	4      -    payload
//
// Frame kinds:
//
//	kind     count meaning        payload
//	Addrs    addresses           count × 16-byte address
//	Prefixes prefixes            count × (16-byte address + 1 length byte)
//	Seed     1                   8-byte seed of this stream (batch mode)
//	End      0                   stream completed (short = support exhausted)
//	Error    message length      UTF-8 error message; stream failed
//	Trace    1                   16-byte W3C trace ID correlating this body
//	                             with server logs and /v1/debug/traces
//
// A Trace frame is metadata, not data: decoders that predate it treat an
// unknown kind as ErrBadFrame, so writers only emit it when the peer
// negotiated wire version >= 1 (this package's first public version
// already decodes it; the frame was added before any cross-version
// deployment existed).
//
// Frames of different streams interleave arbitrarily; frames of one
// stream are in order. A reader demultiplexes on the stream index. Data
// frames carry at most MaxFrameRecords records, so a frame's payload is
// bounded and a decoder can reuse one fixed buffer.
//
// Ownership follows the pooled-buffer rules of DESIGN.md §7: a Writer
// owns one frame buffer for its lifetime and flushes complete frames to
// its sink, and a Reader's Frame payload aliases the Reader's internal
// buffer — both are reusable via Reset so steady state is 0 allocs/op in
// each direction.
package wire

import (
	"errors"
	"fmt"
	"io"

	"entropyip/internal/ip6"
)

// Magic identifies an Entropy/IP binary stream. It doubles as a
// file signature for candidate sets saved to disk.
var Magic = [4]byte{'E', 'I', 'P', '6'}

// Version is the current wire-format version. Readers reject other
// versions rather than guessing.
const Version = 1

// ContentType is the negotiated media type of the binary encoding.
const ContentType = "application/x-entropyip-addrs"

// Header flags.
const (
	// FlagPrefixes marks a stream of /len-prefixed candidates (17-byte
	// records) instead of plain addresses.
	FlagPrefixes = 1 << 0
	// FlagBatch marks a multi-stream (batch generate) body; per-stream
	// seeds arrive in Seed frames.
	FlagBatch = 1 << 1

	flagsKnown = FlagPrefixes | FlagBatch
)

// Frame kinds.
const (
	KindAddrs    = 0x01
	KindPrefixes = 0x02
	KindSeed     = 0x03
	KindEnd      = 0x04
	KindError    = 0x05
	KindTrace    = 0x06
)

const (
	// HeaderSize is the fixed stream header length in bytes.
	HeaderSize = 16
	// FrameHeaderSize is the per-frame header length in bytes.
	FrameHeaderSize = 4
	// MaxFrameRecords caps the records in one data frame, bounding a
	// frame's payload (MaxFrameRecords × 17 bytes) so decoders run on one
	// fixed buffer.
	MaxFrameRecords = 4096
	// MaxStreams caps the stream count of a batch body at what the
	// 1-byte frame stream index can address.
	MaxStreams = 256

	addrSize    = 16
	prefixSize  = 17
	maxPayload  = MaxFrameRecords * prefixSize
	maxErrorLen = 1<<16 - 1
)

// Errors returned by Reader. ErrBadMagic specifically means the body is
// not a binary stream at all (e.g. text posted with the wrong
// Content-Type), which servers map to 400 with a pointed message.
var (
	ErrBadMagic    = errors.New("wire: bad magic (not an Entropy/IP binary stream)")
	ErrBadVersion  = errors.New("wire: unsupported wire-format version")
	ErrBadFlags    = errors.New("wire: unknown header flag bits")
	ErrBadStreams  = errors.New("wire: invalid stream count")
	ErrBadFrame    = errors.New("wire: malformed frame")
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrameRecords")
)

// Header is the decoded fixed stream header.
type Header struct {
	// Flags holds the Flag* bits.
	Flags uint8
	// Streams is the number of interleaved streams (1 unless FlagBatch).
	Streams int
	// Seed is stream 0's generation seed, echoed for replay; 0 on bodies
	// that carry observations rather than generated candidates.
	Seed int64
}

// Prefixes reports whether the stream carries /len-prefixed records.
func (h Header) Prefixes() bool { return h.Flags&FlagPrefixes != 0 }

// Batch reports whether the stream is a multi-stream batch body.
func (h Header) Batch() bool { return h.Flags&FlagBatch != 0 }

// AppendHeader appends the 16-byte stream header to dst.
func AppendHeader(dst []byte, h Header) []byte {
	dst = append(dst, Magic[0], Magic[1], Magic[2], Magic[3], Version, h.Flags)
	dst = append(dst, byte(h.Streams>>8), byte(h.Streams))
	seed := uint64(h.Seed)
	return append(dst,
		byte(seed>>56), byte(seed>>48), byte(seed>>40), byte(seed>>32),
		byte(seed>>24), byte(seed>>16), byte(seed>>8), byte(seed))
}

// ParseHeader decodes and validates a 16-byte stream header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: header truncated at %d bytes", ErrBadMagic, len(b))
	}
	if b[0] != Magic[0] || b[1] != Magic[1] || b[2] != Magic[2] || b[3] != Magic[3] {
		return Header{}, ErrBadMagic
	}
	if b[4] != Version {
		return Header{}, fmt.Errorf("%w: got %d, support %d", ErrBadVersion, b[4], Version)
	}
	h := Header{Flags: b[5]}
	if h.Flags&^uint8(flagsKnown) != 0 {
		return Header{}, fmt.Errorf("%w: 0x%02x", ErrBadFlags, h.Flags)
	}
	h.Streams = int(b[6])<<8 | int(b[7])
	if h.Streams < 1 || h.Streams > MaxStreams {
		return Header{}, fmt.Errorf("%w: %d (want 1..%d)", ErrBadStreams, h.Streams, MaxStreams)
	}
	if h.Streams > 1 && !h.Batch() {
		return Header{}, fmt.Errorf("%w: %d streams without batch flag", ErrBadStreams, h.Streams)
	}
	var seed uint64
	for _, c := range b[8:16] {
		seed = seed<<8 | uint64(c)
	}
	h.Seed = int64(seed)
	return h, nil
}

// Writer encodes one stream's frames into a single internal buffer and
// hands complete frames to its sink. It buffers up to MaxFrameRecords
// records (or BatchEvery, if smaller) before emitting a data frame, so
// the per-record cost is an append plus an amortized sink write. The
// zero Writer is not usable; call Reset first. Writers are reusable —
// the serving plane pools them — and never allocate after the first
// Reset grows the buffer.
//
// The sink receives each frame as one Write call (header and payload
// together), so several Writers may share one mutex-guarded sink and
// their frames interleave without tearing.
type Writer struct {
	sink io.Writer
	// buf holds the frame under construction: FrameHeaderSize bytes
	// reserved for the header, then the payload so far.
	buf      []byte
	stream   uint8
	kind     uint8 // data-frame kind for this writer's records
	count    int   // records in buf
	perFrame int   // records per emitted frame
	recSize  int
}

// NewWriter returns a Writer for one stream. batchEvery bounds records
// per frame; 0 means MaxFrameRecords. Prefer pooling Writers and calling
// Reset over constructing per request.
func NewWriter(sink io.Writer, stream int, prefixes bool, batchEvery int) *Writer {
	w := &Writer{}
	w.Reset(sink, stream, prefixes, batchEvery)
	return w
}

// Reset reinitializes the Writer for a new stream, keeping its buffer.
func (w *Writer) Reset(sink io.Writer, stream int, prefixes bool, batchEvery int) {
	if stream < 0 || stream >= MaxStreams {
		panic(fmt.Sprintf("wire: stream index %d out of range", stream))
	}
	if batchEvery <= 0 || batchEvery > MaxFrameRecords {
		batchEvery = MaxFrameRecords
	}
	w.sink = sink
	w.stream = uint8(stream)
	w.kind, w.recSize = KindAddrs, addrSize
	if prefixes {
		w.kind, w.recSize = KindPrefixes, prefixSize
	}
	w.perFrame = batchEvery
	need := FrameHeaderSize + batchEvery*w.recSize
	if cap(w.buf) < need {
		w.buf = make([]byte, 0, need)
	}
	w.buf = w.buf[:FrameHeaderSize]
	w.count = 0
}

// AddAddr appends one address record, flushing a full frame to the sink.
func (w *Writer) AddAddr(a ip6.Addr) error {
	w.buf = a.AppendBinary(w.buf)
	w.count++
	if w.count >= w.perFrame {
		return w.Flush()
	}
	return nil
}

// AddPrefix appends one prefix record, flushing a full frame to the sink.
func (w *Writer) AddPrefix(p ip6.Prefix) error {
	w.buf = p.AppendBinary(w.buf)
	w.count++
	if w.count >= w.perFrame {
		return w.Flush()
	}
	return nil
}

// Flush emits the buffered records, if any, as one data frame.
func (w *Writer) Flush() error {
	if w.count == 0 {
		return nil
	}
	w.buf[0] = w.kind
	w.buf[1] = w.stream
	w.buf[2] = byte(w.count >> 8)
	w.buf[3] = byte(w.count)
	_, err := w.sink.Write(w.buf)
	w.buf = w.buf[:FrameHeaderSize]
	w.count = 0
	return err
}

// Seed emits a Seed frame announcing this stream's generation seed.
// Batch bodies send one before the stream's first data frame.
func (w *Writer) Seed(seed int64) error {
	if err := w.Flush(); err != nil {
		return err
	}
	// Built in w.buf, not a stack array: a local passed through the sink
	// interface escapes and would cost one allocation per call.
	s := uint64(seed)
	w.buf = append(w.buf[:0], KindSeed, w.stream, 0, 1,
		byte(s>>56), byte(s>>48), byte(s>>40), byte(s>>32),
		byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	_, err := w.sink.Write(w.buf)
	w.buf = w.buf[:FrameHeaderSize]
	return err
}

// Trace emits a Trace frame carrying the request's 16-byte W3C trace ID,
// so binary-stream consumers can correlate a mid-stream Error frame with
// server logs and /v1/debug/traces. Servers send it right after the
// stream header, before any data frame.
func (w *Writer) Trace(id [16]byte) error {
	if err := w.Flush(); err != nil {
		return err
	}
	// Built in w.buf for the same escape-allocation reason as Seed.
	w.buf = append(w.buf[:0], KindTrace, w.stream, 0, 1)
	w.buf = append(w.buf, id[:]...)
	_, err := w.sink.Write(w.buf)
	w.buf = w.buf[:FrameHeaderSize]
	return err
}

// AppendTraceFrame appends a complete Trace frame to dst — for callers
// that write the frame alongside the stream header without a Writer.
func AppendTraceFrame(dst []byte, stream int, id [16]byte) []byte {
	dst = append(dst, KindTrace, byte(stream), 0, 1)
	return append(dst, id[:]...)
}

// End flushes pending records and emits the stream's End frame.
func (w *Writer) End() error {
	if err := w.Flush(); err != nil {
		return err
	}
	w.buf = append(w.buf[:0], KindEnd, w.stream, 0, 0)
	_, err := w.sink.Write(w.buf)
	w.buf = w.buf[:FrameHeaderSize]
	return err
}

// Error flushes pending records and emits an Error frame carrying msg
// (truncated to 64 KiB - 1). The stream is over after an Error frame.
func (w *Writer) Error(msg string) error {
	if err := w.Flush(); err != nil {
		return err
	}
	if len(msg) > maxErrorLen {
		msg = msg[:maxErrorLen]
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, KindError, w.stream, byte(len(msg)>>8), byte(len(msg)))
	w.buf = append(w.buf, msg...)
	_, err := w.sink.Write(w.buf)
	w.buf = w.buf[:FrameHeaderSize]
	w.count = 0
	return err
}

// Frame is one decoded frame. Payload aliases the Reader's internal
// buffer: it is valid until the next Next or Reset call and must be
// copied to be retained.
type Frame struct {
	Kind    uint8
	Stream  int
	Count   int
	Payload []byte
}

// Addr returns data record i of an Addrs frame.
func (f Frame) Addr(i int) ip6.Addr {
	a, _ := ip6.AddrFromBinary(f.Payload[i*addrSize:])
	return a
}

// Prefix returns data record i of a Prefixes frame.
func (f Frame) Prefix(i int) ip6.Prefix {
	p, _ := ip6.PrefixFromBinary(f.Payload[i*prefixSize:])
	return p
}

// Seed returns the seed of a Seed frame.
func (f Frame) Seed() int64 {
	var s uint64
	for _, c := range f.Payload[:8] {
		s = s<<8 | uint64(c)
	}
	return int64(s)
}

// Message returns the message of an Error frame.
func (f Frame) Message() string { return string(f.Payload) }

// TraceID returns the 16-byte trace ID of a Trace frame.
func (f Frame) TraceID() [16]byte {
	var id [16]byte
	copy(id[:], f.Payload)
	return id
}

// Reader decodes a binary stream from an io.Reader into one fixed
// internal buffer. The zero Reader is not usable; call Reset, which
// reads and validates the header. Readers are reusable and allocate
// nothing after their buffer reaches maxPayload.
type Reader struct {
	src io.Reader
	hdr Header
	buf []byte
}

// NewReader returns a Reader over src after decoding its header.
func NewReader(src io.Reader) (*Reader, error) {
	r := &Reader{}
	if err := r.Reset(src); err != nil {
		return nil, err
	}
	return r, nil
}

// Reset points the Reader at a new source and decodes its header,
// keeping the internal buffer.
func (r *Reader) Reset(src io.Reader) error {
	if cap(r.buf) < maxPayload {
		r.buf = make([]byte, maxPayload)
	}
	r.buf = r.buf[:cap(r.buf)]
	r.src = src
	buf := r.buf[:HeaderSize]
	if _, err := io.ReadFull(src, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: short header", ErrBadMagic)
		}
		return err
	}
	h, err := ParseHeader(buf)
	if err != nil {
		return err
	}
	r.hdr = h
	return nil
}

// Header returns the stream header decoded by Reset.
func (r *Reader) Header() Header { return r.hdr }

// Next decodes the next frame. It returns io.EOF on a clean end of the
// source at a frame boundary; any other truncation is ErrBadFrame. The
// returned Frame's Payload aliases the Reader's buffer.
func (r *Reader) Next() (Frame, error) {
	hdr := r.buf[:FrameHeaderSize]
	if _, err := io.ReadFull(r.src, hdr); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Frame{}, fmt.Errorf("%w: truncated frame header", ErrBadFrame)
		}
		return Frame{}, err
	}
	f := Frame{
		Kind:   hdr[0],
		Stream: int(hdr[1]),
		Count:  int(hdr[2])<<8 | int(hdr[3]),
	}
	if f.Stream >= r.hdr.Streams {
		return Frame{}, fmt.Errorf("%w: stream index %d of %d", ErrBadFrame, f.Stream, r.hdr.Streams)
	}
	var payload int
	switch f.Kind {
	case KindAddrs:
		if f.Count > MaxFrameRecords {
			return Frame{}, fmt.Errorf("%w: %d addresses", ErrFrameTooBig, f.Count)
		}
		if f.Count == 0 {
			return Frame{}, fmt.Errorf("%w: empty data frame", ErrBadFrame)
		}
		payload = f.Count * addrSize
	case KindPrefixes:
		if f.Count > MaxFrameRecords {
			return Frame{}, fmt.Errorf("%w: %d prefixes", ErrFrameTooBig, f.Count)
		}
		if f.Count == 0 {
			return Frame{}, fmt.Errorf("%w: empty data frame", ErrBadFrame)
		}
		payload = f.Count * prefixSize
	case KindSeed:
		if f.Count != 1 {
			return Frame{}, fmt.Errorf("%w: seed frame count %d", ErrBadFrame, f.Count)
		}
		payload = 8
	case KindEnd:
		if f.Count != 0 {
			return Frame{}, fmt.Errorf("%w: end frame count %d", ErrBadFrame, f.Count)
		}
	case KindError:
		payload = f.Count // count is the message byte length
	case KindTrace:
		if f.Count != 1 {
			return Frame{}, fmt.Errorf("%w: trace frame count %d", ErrBadFrame, f.Count)
		}
		payload = 16
	default:
		return Frame{}, fmt.Errorf("%w: unknown kind 0x%02x", ErrBadFrame, f.Kind)
	}
	if payload > 0 {
		f.Payload = r.buf[:payload]
		if _, err := io.ReadFull(r.src, f.Payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Frame{}, fmt.Errorf("%w: truncated payload", ErrBadFrame)
			}
			// A real source error (size cap, network): surface it as-is so
			// callers can map it (e.g. http.MaxBytesError to 413).
			return Frame{}, err
		}
	}
	if f.Kind == KindPrefixes {
		// Validate every record's length byte here so consumers can index
		// records without per-record error handling.
		for i := 0; i < f.Count; i++ {
			if bits := f.Payload[i*prefixSize+addrSize]; bits > 128 {
				return Frame{}, fmt.Errorf("%w: prefix length %d", ErrBadFrame, bits)
			}
		}
	}
	return f, nil
}
