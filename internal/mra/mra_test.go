package mra

import (
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
)

func TestNewSinglePrefix(t *testing.T) {
	// All addresses identical: every count is 1 and every ACR is 0.
	a := ip6.MustParseAddr("2001:db8::1")
	s := New([]ip6.Addr{a, a, a})
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	for d := 0; d <= ip6.NybbleCount; d++ {
		if s.Counts[d] != 1 {
			t.Errorf("Counts[%d] = %d, want 1", d, s.Counts[d])
		}
	}
	for i, v := range s.ACR {
		if v != 0 {
			t.Errorf("ACR[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewEmpty(t *testing.T) {
	s := New(nil)
	if s.N != 0 {
		t.Errorf("N = %d", s.N)
	}
	for _, v := range s.ACR {
		if v != 0 {
			t.Error("ACR of empty set should be all zero")
		}
	}
}

func TestACRDiscriminatingNybble(t *testing.T) {
	// 16 addresses differing only in nybble 12 (bits 48-52): ACR at that
	// nybble should be high (1 - 1/16), zero elsewhere.
	addrs := make([]ip6.Addr, 0, 16)
	base := ip6.MustParseAddr("2001:db8::1")
	for v := 0; v < 16; v++ {
		addrs = append(addrs, base.SetNybble(12, byte(v)))
	}
	s := New(addrs)
	if got, want := s.ACR[12], 1-1.0/16; got != want {
		t.Errorf("ACR[12] = %v, want %v", got, want)
	}
	for i, v := range s.ACR {
		if i != 12 && v != 0 {
			t.Errorf("ACR[%d] = %v, want 0", i, v)
		}
	}
	if s.AggregatesAt(52) != 16 || s.AggregatesAt(48) != 1 {
		t.Errorf("AggregatesAt: %d at /52, %d at /48", s.AggregatesAt(52), s.AggregatesAt(48))
	}
}

func TestACRRandomVsStructured(t *testing.T) {
	// Random IIDs inside one /64: ACR in the top half is zero; ACR in the
	// bottom half is high near the first random nybbles (each prefix splits
	// into many).
	rng := rand.New(rand.NewSource(7))
	base := ip6.MustParseAddr("2001:db8:1:2::")
	addrs := make([]ip6.Addr, 4096)
	for i := range addrs {
		addrs[i] = base.SetField(16, 16, rng.Uint64())
	}
	s := New(addrs)
	for i := 0; i < 16; i++ {
		if s.ACR[i] != 0 {
			t.Errorf("network ACR[%d] = %v, want 0", i, s.ACR[i])
		}
	}
	if s.ACR[16] < 0.9 {
		t.Errorf("ACR[16] = %v, want >= 0.9 (each /64 splits into ~16 /68s)", s.ACR[16])
	}
	// Deep nybbles have ACR near 0: by then almost every prefix is unique
	// already, so an extra nybble rarely splits aggregates.
	if s.ACR[31] > 0.2 {
		t.Errorf("ACR[31] = %v, want near 0", s.ACR[31])
	}
}

func TestACRBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	addrs := make([]ip6.Addr, 1000)
	for i := range addrs {
		var b [16]byte
		rng.Read(b[:])
		addrs[i] = ip6.AddrFrom16(b)
	}
	s := New(addrs)
	for i, v := range s.ACR {
		if v < 0 || v >= 1 {
			t.Errorf("ACR[%d] = %v out of [0,1)", i, v)
		}
	}
	// Counts are monotone non-decreasing with depth.
	for d := 1; d <= ip6.NybbleCount; d++ {
		if s.Counts[d] < s.Counts[d-1] {
			t.Errorf("Counts[%d]=%d < Counts[%d]=%d", d, s.Counts[d], d-1, s.Counts[d-1])
		}
	}
}

func TestMeanACR(t *testing.T) {
	addrs := make([]ip6.Addr, 0, 16)
	base := ip6.MustParseAddr("2001:db8::1")
	for v := 0; v < 16; v++ {
		addrs = append(addrs, base.SetNybble(12, byte(v)))
	}
	s := New(addrs)
	if got := s.MeanACR(12, 13); got != 1-1.0/16 {
		t.Errorf("MeanACR(12,13) = %v", got)
	}
	if got := s.MeanACR(0, 8); got != 0 {
		t.Errorf("MeanACR(0,8) = %v", got)
	}
	if s.MeanACR(5, 5) != 0 || s.MeanACR(-1, 0) != 0 || s.MeanACR(31, 40) != s.ACR[31] {
		t.Error("MeanACR edge cases wrong")
	}
}

func TestAggregatesAtEdges(t *testing.T) {
	s := New([]ip6.Addr{ip6.MustParseAddr("2001:db8::1")})
	if s.AggregatesAt(-4) != 0 {
		t.Error("negative bits should be 0")
	}
	if s.AggregatesAt(0) != 1 {
		t.Error("0 bits should count the root")
	}
	if s.AggregatesAt(1000) != 1 {
		t.Error("overlong bits should clamp to full length")
	}
}

func TestFromCounter(t *testing.T) {
	c := ip6.NewPrefixCounter()
	c.Add(ip6.MustParseAddr("2001:db8:1::1"))
	c.Add(ip6.MustParseAddr("2001:db8:2::1"))
	s := FromCounter(c)
	if s.N != 2 || s.Counts[12] != 2 {
		t.Errorf("FromCounter: N=%d Counts[12]=%d", s.N, s.Counts[12])
	}
}

func BenchmarkNew10K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]ip6.Addr, 10000)
	base := ip6.MustParseAddr("2001:db8::")
	for i := range addrs {
		addrs[i] = base.SetField(16, 16, rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(addrs)
	}
}
