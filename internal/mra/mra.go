// Package mra computes Multi-Resolution Aggregate style prefix counts and
// the 4-bit Aggregate Count Ratio (ACR) series that Entropy/IP plots next
// to per-nybble entropy (Figs. 1, 7-10 of the paper).
//
// The paper borrows the ACR concept from Plonka & Berger (IMC 2015) without
// restating a formula; the definition implemented here is documented in
// DESIGN.md: with c(d) the number of distinct d-nybble (4·d-bit) prefixes
// observed in the set and c(0)=1, the ACR at nybble d (1-based) is
//
//	ACR(d) = 1 − c(d−1)/c(d).
//
// ACR(d) is 0 when nybble d never splits existing aggregates (it carries no
// prefix-discriminating information) and approaches 1 when each aggregate
// at depth d−1 splits into many aggregates at depth d. This matches the
// qualitative reading used in the paper: "the higher the ACR value, the
// more pertinent to prefix discrimination a given segment is."
package mra

import (
	"sort"

	"entropyip/internal/ip6"
	"entropyip/internal/parallel"
)

// Series holds prefix counts and ACR values for a dataset at every 4-bit
// boundary.
type Series struct {
	// Counts[d] is the number of distinct d-nybble prefixes, d = 0..32.
	Counts [ip6.NybbleCount + 1]int
	// ACR[i] is the aggregate count ratio of nybble i (0-based, 0..31),
	// each in [0, 1).
	ACR [ip6.NybbleCount]float64
	// N is the number of addresses analyzed (with multiplicity).
	N int
}

// New computes the ACR series for the given addresses, using all
// available cores. The result is identical for any worker count; use
// NewWorkers to bound concurrency.
func New(addrs []ip6.Addr) *Series {
	return NewWorkers(addrs, 0)
}

// NewWorkers is New with bounded concurrency (<= 0 selects GOMAXPROCS).
//
// The parallel path does not build the trie at all: it sorts a copy of
// the addresses (shards sorted concurrently, then merged) and takes the
// histogram of common-prefix lengths of adjacent sorted pairs. The number
// of distinct d-nybble prefixes is then
//
//	counts[d] = 1 + #{adjacent pairs with LCP < d nybbles},
//
// because in sorted order every new d-prefix starts exactly where an
// adjacent pair first differs before depth d. This is skew-immune — real
// IPv6 data concentrates under 2000::/3, which starves any partition of
// the address space's top levels — and everything merged is an integer
// histogram folded in shard order, so the series is bit-identical to the
// sequential trie's for any worker count.
func NewWorkers(addrs []ip6.Addr, workers int) *Series {
	w := parallel.Workers(workers)
	// The sequential trie wins on one core and on inputs too small to
	// amortize the sort's copy.
	if w <= 1 || len(addrs) < 2048 {
		c := ip6.NewPrefixCounter()
		c.AddAll(addrs)
		return FromCounter(c)
	}
	sorted := make([]ip6.Addr, len(addrs))
	copy(sorted, addrs)
	sortAddrs(sorted, w)

	type lcpHist [ip6.NybbleCount + 1]int
	parts := parallel.MapShards(w, len(sorted)-1, func(sh parallel.Shard) *lcpHist {
		var h lcpHist
		for i := sh.Start; i < sh.End; i++ {
			h[lcpNybbles(sorted[i], sorted[i+1])]++
		}
		return &h
	})
	var hist lcpHist
	for _, p := range parts {
		for l, c := range p {
			hist[l] += c
		}
	}

	s := &Series{N: len(addrs)}
	s.Counts[0] = 1
	cum := 0
	for d := 1; d <= ip6.NybbleCount; d++ {
		cum += hist[d-1] // pairs whose LCP is exactly d-1 first differ before depth d
		s.Counts[d] = 1 + cum
	}
	fillACR(s)
	return s
}

// lcpNybbles returns the length, in nybbles, of the longest common prefix
// of two addresses (32 for equal addresses).
func lcpNybbles(a, b ip6.Addr) int {
	ab, bb := a.Bytes(), b.Bytes()
	for i := 0; i < 16; i++ {
		if ab[i] != bb[i] {
			if ab[i]>>4 == bb[i]>>4 {
				return 2*i + 1
			}
			return 2 * i
		}
	}
	return ip6.NybbleCount
}

// sortAddrs sorts the slice in place: contiguous shards are sorted
// concurrently, then merged pairwise in rounds, with the merges of each
// round also running concurrently. The fully sorted result is unique for
// a given multiset, so the outcome is independent of the worker count.
func sortAddrs(a []ip6.Addr, workers int) {
	shards := parallel.Shards(len(a), workers)
	if len(shards) <= 1 {
		sort.Slice(a, func(i, j int) bool { return a[i].Less(a[j]) })
		return
	}
	parallel.ForEach(len(shards), len(shards), func(i int) {
		sub := a[shards[i].Start:shards[i].End]
		sort.Slice(sub, func(x, y int) bool { return sub[x].Less(sub[y]) })
	})
	buf := make([]ip6.Addr, len(a))
	src, dst := a, buf
	for len(shards) > 1 {
		pairs := (len(shards) + 1) / 2
		next := make([]parallel.Shard, pairs)
		for j := 0; j < pairs; j++ {
			lo := shards[2*j]
			if 2*j+1 < len(shards) {
				next[j] = parallel.Shard{Start: lo.Start, End: shards[2*j+1].End}
			} else {
				next[j] = lo
			}
		}
		parallel.ForEach(pairs, pairs, func(j int) {
			out := dst[next[j].Start:next[j].End]
			if 2*j+1 >= len(shards) {
				copy(out, src[next[j].Start:next[j].End])
				return
			}
			l, r := shards[2*j], shards[2*j+1]
			mergeAddrs(out, src[l.Start:l.End], src[r.Start:r.End])
		})
		shards = next
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// mergeAddrs merges two sorted runs into dst (len(dst) = len(left) +
// len(right)).
func mergeAddrs(dst, left, right []ip6.Addr) {
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if right[j].Less(left[i]) {
			dst[k] = right[j]
			j++
		} else {
			dst[k] = left[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], left[i:])
	copy(dst[k:], right[j:])
}

// FromCounter computes the ACR series from an already-populated prefix
// counter.
func FromCounter(c *ip6.PrefixCounter) *Series {
	s := &Series{Counts: c.Counts(), N: c.Addrs()}
	fillACR(s)
	return s
}

// fillACR derives the ACR values from the prefix counts.
func fillACR(s *Series) {
	for d := 1; d <= ip6.NybbleCount; d++ {
		prev, cur := s.Counts[d-1], s.Counts[d]
		if cur <= 0 || prev <= 0 {
			s.ACR[d-1] = 0
			continue
		}
		s.ACR[d-1] = 1 - float64(prev)/float64(cur)
	}
}

// AggregatesAt returns the number of distinct prefixes of the given bit
// length. Only 4-bit aligned lengths are tracked; other lengths return the
// count at the next shorter aligned length.
func (s *Series) AggregatesAt(bits int) int {
	if bits < 0 {
		return 0
	}
	d := bits / 4
	if d > ip6.NybbleCount {
		d = ip6.NybbleCount
	}
	return s.Counts[d]
}

// MeanACR returns the mean ACR over a half-open nybble range [from, to).
// It is a convenience for summarizing how strongly a segment discriminates
// prefixes.
func (s *Series) MeanACR(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > ip6.NybbleCount {
		to = ip6.NybbleCount
	}
	if to <= from {
		return 0
	}
	sum := 0.0
	for i := from; i < to; i++ {
		sum += s.ACR[i]
	}
	return sum / float64(to-from)
}
