// Package mra computes Multi-Resolution Aggregate style prefix counts and
// the 4-bit Aggregate Count Ratio (ACR) series that Entropy/IP plots next
// to per-nybble entropy (Figs. 1, 7-10 of the paper).
//
// The paper borrows the ACR concept from Plonka & Berger (IMC 2015) without
// restating a formula; the definition implemented here is documented in
// DESIGN.md: with c(d) the number of distinct d-nybble (4·d-bit) prefixes
// observed in the set and c(0)=1, the ACR at nybble d (1-based) is
//
//	ACR(d) = 1 − c(d−1)/c(d).
//
// ACR(d) is 0 when nybble d never splits existing aggregates (it carries no
// prefix-discriminating information) and approaches 1 when each aggregate
// at depth d−1 splits into many aggregates at depth d. This matches the
// qualitative reading used in the paper: "the higher the ACR value, the
// more pertinent to prefix discrimination a given segment is."
package mra

import (
	"entropyip/internal/ip6"
)

// Series holds prefix counts and ACR values for a dataset at every 4-bit
// boundary.
type Series struct {
	// Counts[d] is the number of distinct d-nybble prefixes, d = 0..32.
	Counts [ip6.NybbleCount + 1]int
	// ACR[i] is the aggregate count ratio of nybble i (0-based, 0..31),
	// each in [0, 1).
	ACR [ip6.NybbleCount]float64
	// N is the number of addresses analyzed (with multiplicity).
	N int
}

// New computes the ACR series for the given addresses.
func New(addrs []ip6.Addr) *Series {
	c := ip6.NewPrefixCounter()
	c.AddAll(addrs)
	return FromCounter(c)
}

// FromCounter computes the ACR series from an already-populated prefix
// counter.
func FromCounter(c *ip6.PrefixCounter) *Series {
	s := &Series{Counts: c.Counts(), N: c.Addrs()}
	for d := 1; d <= ip6.NybbleCount; d++ {
		prev, cur := s.Counts[d-1], s.Counts[d]
		if cur <= 0 || prev <= 0 {
			s.ACR[d-1] = 0
			continue
		}
		s.ACR[d-1] = 1 - float64(prev)/float64(cur)
	}
	return s
}

// AggregatesAt returns the number of distinct prefixes of the given bit
// length. Only 4-bit aligned lengths are tracked; other lengths return the
// count at the next shorter aligned length.
func (s *Series) AggregatesAt(bits int) int {
	if bits < 0 {
		return 0
	}
	d := bits / 4
	if d > ip6.NybbleCount {
		d = ip6.NybbleCount
	}
	return s.Counts[d]
}

// MeanACR returns the mean ACR over a half-open nybble range [from, to).
// It is a convenience for summarizing how strongly a segment discriminates
// prefixes.
func (s *Series) MeanACR(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > ip6.NybbleCount {
		to = ip6.NybbleCount
	}
	if to <= from {
		return 0
	}
	sum := 0.0
	for i := from; i < to; i++ {
		sum += s.ACR[i]
	}
	return sum / float64(to-from)
}
