package mra

import (
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
)

// TestNewWorkersEquivalent asserts the sort+LCP-histogram ACR computation
// matches the sequential trie exactly for any worker count, on both a
// spread population and a realistic skewed one (everything under a single
// /32, the shape that starves address-space partitioning schemes).
func TestNewWorkersEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spread := make([]ip6.Addr, 20_000)
	for i := range spread {
		// Many first nybbles, low-entropy tails, duplicates.
		spread[i] = ip6.AddrFromUint64s(rng.Uint64(), rng.Uint64()&0xff)
	}
	base := ip6.MustParseAddr("2001:db8::")
	skewed := make([]ip6.Addr, 20_000)
	for i := range skewed {
		a := base
		a = a.SetField(8, 4, uint64(rng.Intn(64)))
		a = a.SetField(16, 16, rng.Uint64()&0xffffffff)
		skewed[i] = a
	}
	for name, addrs := range map[string][]ip6.Addr{"spread": spread, "skewed": skewed} {
		want := NewWorkers(addrs, 1)
		for _, workers := range []int{2, 4, 16, 0} {
			got := NewWorkers(addrs, workers)
			if got.N != want.N || got.Counts != want.Counts || got.ACR != want.ACR {
				t.Fatalf("%s workers=%d: series differs from sequential trie", name, workers)
			}
		}
	}
}

func TestNewWorkersEmpty(t *testing.T) {
	got := NewWorkers(nil, 8)
	if got.N != 0 || got.Counts[0] != 0 {
		t.Fatalf("empty series: N=%d counts[0]=%d", got.N, got.Counts[0])
	}
}
