// Package baseline implements the candidate-generation baselines that the
// paper compares against (§2, §5.5): heuristic IID guessing in the style of
// the scan6 tool (Gont & Chown, RFC 7707) and recurring-pattern IID mining
// in the style of Ullrich et al., plus a uniform-random strawman. Both
// published approaches only guess interface identifiers — they require the
// target /64 prefixes to be known in advance, which is exactly the
// limitation Entropy/IP removes; the baselines therefore generate
// candidates only inside /64s observed in training.
package baseline

import (
	"sort"

	"entropyip/internal/ip6"
	"entropyip/internal/stats"
)

// Generator produces candidate target addresses from a training sample.
type Generator interface {
	// Name identifies the baseline in reports.
	Name() string
	// Generate returns up to count unique candidates derived from the
	// training addresses.
	Generate(train []ip6.Addr, count int, seed int64) []ip6.Addr
}

// trainingPrefixes returns the distinct /64s of the training set in sorted
// order (determinism matters for reproducible experiments).
func trainingPrefixes(train []ip6.Addr) []ip6.Prefix {
	set := ip6.NewPrefixSet(len(train))
	for _, a := range train {
		set.Add(ip6.Prefix64(a))
	}
	return set.Sorted()
}

// Random generates candidates with uniformly random interface identifiers
// inside the training /64s — the strawman showing that blind guessing in a
// 2^64 space cannot work.
type Random struct{}

// Name implements Generator.
func (Random) Name() string { return "random-iid" }

// Generate implements Generator.
func (Random) Generate(train []ip6.Addr, count int, seed int64) []ip6.Addr {
	prefixes := trainingPrefixes(train)
	if len(prefixes) == 0 || count <= 0 {
		return nil
	}
	rng := stats.RNG(seed)
	seen := ip6.NewSet(count)
	out := make([]ip6.Addr, 0, count)
	for attempts := 0; len(out) < count && attempts < count*4; attempts++ {
		p := prefixes[rng.Intn(len(prefixes))]
		a := p.Addr().SetField(16, 16, rng.Uint64())
		if seen.Add(a) {
			out = append(out, a)
		}
	}
	return out
}

// Scan6 mimics the heuristics of the scan6 tool: for every known /64 it
// proposes low-byte addresses, addresses embedding IPv4 addresses gleaned
// from the training data, and Modified EUI-64 addresses built from OUIs
// observed in training.
type Scan6 struct {
	// MaxLowByte bounds the ::0 .. ::MaxLowByte sweep per prefix
	// (default 255).
	MaxLowByte int
}

// Name implements Generator.
func (Scan6) Name() string { return "scan6-heuristics" }

// Generate implements Generator.
func (s Scan6) Generate(train []ip6.Addr, count int, seed int64) []ip6.Addr {
	maxLow := s.MaxLowByte
	if maxLow <= 0 {
		maxLow = 255
	}
	prefixes := trainingPrefixes(train)
	if len(prefixes) == 0 || count <= 0 {
		return nil
	}
	// Collect observed OUIs and embedded IPv4 first octets from training.
	ouiSet := map[uint64]bool{}
	v4Octets := map[uint64]bool{}
	for _, a := range train {
		if ip6.IsEUI64(a) {
			ouiSet[a.Field(16, 6)] = true
		}
		if v4, ok := ip6.EmbeddedIPv4(a); ok && v4>>24 != 0 {
			v4Octets[uint64(v4>>24)] = true
		}
	}
	ouis := sortedKeys(ouiSet)
	octets := sortedKeys(v4Octets)

	rng := stats.RNG(seed)
	seen := ip6.NewSet(count)
	out := make([]ip6.Addr, 0, count)
	add := func(a ip6.Addr) bool {
		if len(out) >= count {
			return false
		}
		if seen.Add(a) {
			out = append(out, a)
		}
		return len(out) < count
	}
	// Pass 1: low-byte sweep, round-robin over prefixes so that a small
	// count still covers many prefixes.
	for low := 0; low <= maxLow; low++ {
		for _, p := range prefixes {
			if !add(p.Addr().SetField(28, 4, uint64(low))) {
				break
			}
		}
		if len(out) >= count {
			break
		}
	}
	// Pass 2: embedded IPv4 guesses.
	for _, p := range prefixes {
		if len(out) >= count {
			break
		}
		for _, first := range octets {
			v4 := first<<24 | uint64(rng.Uint32()&0xffffff)
			if !add(p.Addr().SetField(24, 8, v4)) {
				break
			}
		}
	}
	// Pass 3: EUI-64 guesses from observed OUIs.
	for _, p := range prefixes {
		if len(out) >= count {
			break
		}
		for _, oui := range ouis {
			iid := oui<<40 | 0xfffe<<24 | rng.Uint64()&0xffffff
			if !add(p.Addr().SetField(16, 16, iid)) {
				break
			}
		}
	}
	return out
}

// Pattern mimics the recurring-pattern approach of Ullrich et al.: it
// records, for every IID nybble position, the values observed in training,
// and generates candidates by recombining observed values position by
// position inside known /64s. Structure within the IID is reproduced;
// structure of the network identifier is not attempted.
type Pattern struct{}

// Name implements Generator.
func (Pattern) Name() string { return "iid-pattern" }

// Generate implements Generator.
func (Pattern) Generate(train []ip6.Addr, count int, seed int64) []ip6.Addr {
	prefixes := trainingPrefixes(train)
	if len(prefixes) == 0 || count <= 0 {
		return nil
	}
	// Per-position value frequencies over the IID nybbles (16..31).
	var freqs [16][16]int
	for _, a := range train {
		for i := 0; i < 16; i++ {
			freqs[i][a.Nybble(16+i)]++
		}
	}
	rng := stats.RNG(seed)
	seen := ip6.NewSet(count)
	out := make([]ip6.Addr, 0, count)
	for attempts := 0; len(out) < count && attempts < count*8; attempts++ {
		p := prefixes[rng.Intn(len(prefixes))]
		a := p.Addr()
		for i := 0; i < 16; i++ {
			weights := make([]float64, 16)
			for v, c := range freqs[i] {
				weights[v] = float64(c)
			}
			a = a.SetNybble(16+i, byte(stats.WeightedChoice(rng, weights)))
		}
		if seen.Add(a) {
			out = append(out, a)
		}
	}
	return out
}

// All returns every baseline generator in a stable order.
func All() []Generator {
	return []Generator{Random{}, Scan6{}, Pattern{}}
}

func sortedKeys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
