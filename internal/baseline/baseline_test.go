package baseline

import (
	"testing"

	"entropyip/internal/ip6"
)

// trainSample builds a training set across a few /64s with low-byte hosts,
// one EUI-64 host and one embedded-IPv4 host.
func trainSample() []ip6.Addr {
	var out []ip6.Addr
	for s := 0; s < 5; s++ {
		base := ip6.MustParseAddr("2001:db8::").SetField(12, 4, uint64(s))
		for h := 1; h <= 20; h++ {
			out = append(out, base.SetField(28, 4, uint64(h)))
		}
		out = append(out, base.SetField(16, 16, 0x021122fffe334455+uint64(s))) // EUI-64
		out = append(out, base.SetField(24, 8, 0x7f000001+uint64(s)))          // embedded 127.0.0.x
	}
	return out
}

func TestAllBaselinesBasicContract(t *testing.T) {
	train := trainSample()
	trainPrefixes := ip6.NewPrefixSet(0)
	for _, a := range train {
		trainPrefixes.Add(ip6.Prefix64(a))
	}
	for _, g := range All() {
		if g.Name() == "" {
			t.Error("baseline without a name")
		}
		got := g.Generate(train, 500, 1)
		if len(got) == 0 {
			t.Errorf("%s generated nothing", g.Name())
			continue
		}
		if len(got) > 500 {
			t.Errorf("%s generated too many candidates", g.Name())
		}
		seen := ip6.NewSet(len(got))
		for _, a := range got {
			if !seen.Add(a) {
				t.Errorf("%s generated duplicates", g.Name())
				break
			}
			// The published baselines only guess IIDs: candidates must stay
			// inside training /64s.
			if !trainPrefixes.Contains(ip6.Prefix64(a)) {
				t.Errorf("%s generated a candidate outside training /64s: %v", g.Name(), a)
				break
			}
		}
		// Determinism.
		again := g.Generate(train, 500, 1)
		if len(again) != len(got) {
			t.Errorf("%s is not deterministic", g.Name())
			continue
		}
		for i := range got {
			if got[i] != again[i] {
				t.Errorf("%s is not deterministic", g.Name())
				break
			}
		}
	}
}

func TestBaselinesEmptyInput(t *testing.T) {
	for _, g := range All() {
		if got := g.Generate(nil, 100, 1); len(got) != 0 {
			t.Errorf("%s should generate nothing without training data", g.Name())
		}
		if got := g.Generate(trainSample(), 0, 1); len(got) != 0 {
			t.Errorf("%s should generate nothing for count=0", g.Name())
		}
	}
}

func TestScan6FindsLowByteHosts(t *testing.T) {
	train := trainSample()
	// Hold out: the same network has low-byte hosts 21..40 that were not in
	// training; scan6-style sweeping should find many of them.
	heldOut := ip6.NewSet(0)
	for s := 0; s < 5; s++ {
		base := ip6.MustParseAddr("2001:db8::").SetField(12, 4, uint64(s))
		for h := 21; h <= 40; h++ {
			heldOut.Add(base.SetField(28, 4, uint64(h)))
		}
	}
	got := Scan6{}.Generate(train, 2000, 2)
	hits := 0
	for _, a := range got {
		if heldOut.Contains(a) {
			hits++
		}
	}
	if hits < 50 {
		t.Errorf("scan6 baseline found only %d of 100 held-out low-byte hosts", hits)
	}
}

func TestScan6RespectsMaxLowByte(t *testing.T) {
	train := trainSample()
	got := Scan6{MaxLowByte: 3}.Generate(train, 10000, 3)
	lowByteCount := 0
	for _, a := range got {
		if a.Field(16, 12) == 0 && a.Field(28, 4) <= 3 {
			lowByteCount++
		}
	}
	// 5 prefixes × 4 values.
	if lowByteCount != 20 {
		t.Errorf("low-byte candidates = %d, want 20", lowByteCount)
	}
}

func TestPatternReproducesIIDStructure(t *testing.T) {
	// Training IIDs always have nybble 31 equal to 1 or 2 and zeros in the
	// middle: the pattern baseline must reproduce that.
	var train []ip6.Addr
	for s := 0; s < 4; s++ {
		base := ip6.MustParseAddr("2001:db8::").SetField(12, 4, uint64(s))
		for h := 0; h < 50; h++ {
			train = append(train, base.SetField(31, 1, uint64(h%2)+1))
		}
	}
	got := Pattern{}.Generate(train, 200, 4)
	if len(got) == 0 {
		t.Fatal("no candidates")
	}
	for _, a := range got {
		last := a.Field(31, 1)
		if last != 1 && last != 2 {
			t.Fatalf("pattern baseline produced IID ending in %x", last)
		}
		if a.Field(16, 15) != 0 {
			t.Fatalf("pattern baseline should keep the zero middle: %v", a)
		}
	}
}

func TestRandomBaselineCannotGuessStructuredHosts(t *testing.T) {
	train := trainSample()
	heldOut := ip6.NewSet(0)
	for s := 0; s < 5; s++ {
		base := ip6.MustParseAddr("2001:db8::").SetField(12, 4, uint64(s))
		for h := 21; h <= 40; h++ {
			heldOut.Add(base.SetField(28, 4, uint64(h)))
		}
	}
	got := Random{}.Generate(train, 5000, 5)
	for _, a := range got {
		if heldOut.Contains(a) {
			t.Fatal("a uniform random 64-bit IID guess should essentially never hit")
		}
	}
}
