package entropy

import (
	"testing"

	"entropyip/internal/ip6"
	"entropyip/internal/synth"
)

// benchProfileAddrs generates the synthetic S1 population used by the
// CI-gated hot-path benchmarks (see bench_baseline.txt at the repo root).
func benchProfileAddrs(b *testing.B, n int) []ip6.Addr {
	b.Helper()
	addrs, err := synth.Generate("S1", n, 1)
	if err != nil {
		b.Fatal(err)
	}
	return addrs
}

func benchmarkNewProfile(b *testing.B, n int) {
	addrs := benchProfileAddrs(b, n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewProfile(addrs)
		if p.N != len(addrs) {
			b.Fatal("bad profile")
		}
	}
}

func BenchmarkNewProfile10k(b *testing.B)  { benchmarkNewProfile(b, 10_000) }
func BenchmarkNewProfile100k(b *testing.B) { benchmarkNewProfile(b, 100_000) }

func BenchmarkNewProfileWorkers100k(b *testing.B) {
	addrs := benchProfileAddrs(b, 100_000)
	for _, w := range []int{1, 0} {
		name := "workers=1"
		if w == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NewProfileWorkers(addrs, w)
			}
		})
	}
}
