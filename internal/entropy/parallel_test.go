package entropy

import (
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
)

// structuredAddrs synthesizes a population with constant, low-entropy and
// high-entropy regions, so every code path of the profile (constant
// nybbles, skewed counts, dense counts) is exercised.
func structuredAddrs(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	base := ip6.MustParseAddr("2001:db8::")
	addrs := make([]ip6.Addr, n)
	for i := range addrs {
		a := base
		a = a.SetField(8, 2, uint64(rng.Intn(4)))      // low entropy
		a = a.SetField(16, 4, uint64(rng.Intn(1<<16))) // high entropy
		a = a.SetField(24, 8, rng.Uint64()&0xffffffff) // full-width IID
		addrs[i] = a
	}
	return addrs
}

func TestNewProfileWorkersEquivalent(t *testing.T) {
	addrs := structuredAddrs(5000, 1)
	want := NewProfileWorkers(addrs, 1)
	for _, workers := range []int{2, 3, 8, 0} {
		got := NewProfileWorkers(addrs, workers)
		if got.N != want.N {
			t.Fatalf("workers=%d: N = %d, want %d", workers, got.N, want.N)
		}
		if got.Counts != want.Counts {
			t.Fatalf("workers=%d: count matrices differ", workers)
		}
		// Entropies are computed from identical integer counts, so they
		// must be bit-identical, not merely close.
		if got.H != want.H || got.Raw != want.Raw {
			t.Fatalf("workers=%d: entropy values differ", workers)
		}
	}
}

func TestNewProfileWorkersEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		addrs := structuredAddrs(n, 2)
		want := NewProfileWorkers(addrs, 1)
		got := NewProfileWorkers(addrs, 16)
		if got.N != want.N || got.Counts != want.Counts {
			t.Fatalf("n=%d: profiles differ", n)
		}
	}
}

func TestNewWindowedWorkersEquivalent(t *testing.T) {
	addrs := structuredAddrs(800, 3)
	want := NewWindowedWorkers(addrs, 1)
	for _, workers := range []int{2, 8, 0} {
		got := NewWindowedWorkers(addrs, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(got), len(want))
		}
		for pos := range want {
			if len(got[pos]) != len(want[pos]) {
				t.Fatalf("workers=%d: row %d has %d entries, want %d", workers, pos, len(got[pos]), len(want[pos]))
			}
			for l := range want[pos] {
				if got[pos][l] != want[pos][l] {
					t.Fatalf("workers=%d: W[%d][%d] = %v, want %v", workers, pos, l, got[pos][l], want[pos][l])
				}
			}
		}
	}
}
