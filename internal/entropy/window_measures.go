package entropy

import (
	"fmt"
	"math"

	"entropyip/internal/ip6"
)

// Measure selects the variability metric used by the windowed analysis.
// §4.5 of the paper suggests that, besides entropy, "number of distinct
// values, inter-quartile range, frequency of the most popular value, or a
// weighted mean thereof" could drive the windowing analysis; these
// alternatives are provided for that exploration and for the ablation
// benches.
type Measure int

// Available windowed variability measures.
const (
	// MeasureEntropy is the unnormalized Shannon entropy (the paper's
	// default, Fig. 5).
	MeasureEntropy Measure = iota
	// MeasureDistinct is the number of distinct window values, log2-scaled
	// so it is comparable to entropy (log2 of the count).
	MeasureDistinct
	// MeasureTopFrequency is 1 minus the relative frequency of the most
	// popular window value: 0 when one value dominates completely, close to
	// 1 when no value repeats.
	MeasureTopFrequency
)

// String returns the measure's name.
func (m Measure) String() string {
	switch m {
	case MeasureEntropy:
		return "entropy"
	case MeasureDistinct:
		return "distinct"
	case MeasureTopFrequency:
		return "top-frequency"
	default:
		return fmt.Sprintf("measure(%d)", int(m))
	}
}

// NewWindowedMeasure computes the windowed variability matrix of Fig. 5
// under the chosen measure. NewWindowed is equivalent to calling this with
// MeasureEntropy.
func NewWindowedMeasure(addrs []ip6.Addr, measure Measure) Windowed {
	w := make(Windowed, ip6.NybbleCount)
	nybs := make([]ip6.Nybbles, len(addrs))
	for i, a := range addrs {
		nybs[i] = a.Nybbles()
	}
	for pos := 0; pos < ip6.NybbleCount; pos++ {
		maxLen := ip6.NybbleCount - pos
		w[pos] = make([]float64, maxLen)
		for length := 1; length <= maxLen; length++ {
			counts := make(map[string]int, 64)
			for i := range nybs {
				counts[string(nybs[i][pos:pos+length])]++
			}
			w[pos][length-1] = applyMeasure(counts, len(addrs), measure)
		}
	}
	return w
}

func applyMeasure(counts map[string]int, total int, measure Measure) float64 {
	switch measure {
	case MeasureDistinct:
		if len(counts) == 0 {
			return 0
		}
		return math.Log2(float64(len(counts)))
	case MeasureTopFrequency:
		if total == 0 {
			return 0
		}
		max := 0
		//eip:nondeterministic-ok integer max over the values is the same in any iteration order
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return 1 - float64(max)/float64(total)
	default:
		return ShannonMap(counts)
	}
}
