package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"entropyip/internal/ip6"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) < eps }

func TestShannon(t *testing.T) {
	if Shannon(nil) != 0 || Shannon([]int{0, 0}) != 0 {
		t.Error("empty distributions have zero entropy")
	}
	if Shannon([]int{7}) != 0 {
		t.Error("single outcome has zero entropy")
	}
	if !almostEqual(Shannon([]int{1, 1}), 1, 1e-12) {
		t.Error("fair coin should have 1 bit")
	}
	if !almostEqual(Shannon([]int{1, 1, 1, 1}), 2, 1e-12) {
		t.Error("uniform over 4 should have 2 bits")
	}
	// Paper's example (Eq. 2): values {c:2, f:3} -> normalized by log2(16)
	// gives about 0.24.
	h := Shannon([]int{2, 3})
	if !almostEqual(Normalized(h, 16), 0.2427, 5e-4) {
		t.Errorf("paper example: normalized entropy = %v, want ~0.243", Normalized(h, 16))
	}
	// Negative counts ignored.
	if !almostEqual(Shannon([]int{-5, 1, 1}), 1, 1e-12) {
		t.Error("negative counts must be ignored")
	}
}

func TestShannonMap(t *testing.T) {
	if ShannonMap(map[string]int{}) != 0 {
		t.Error("empty map has zero entropy")
	}
	m := map[string]int{"a": 1, "b": 1, "c": 1, "d": 1}
	if !almostEqual(ShannonMap(m), 2, 1e-12) {
		t.Error("uniform over 4 keys should have 2 bits")
	}
	if !almostEqual(ShannonMap(map[int]int{1: 3, 2: -1}), 0, 1e-12) {
		t.Error("non-positive counts ignored")
	}
}

func TestNormalized(t *testing.T) {
	if Normalized(3, 1) != 0 || Normalized(3, 0) != 0 || Normalized(-1, 16) != 0 {
		t.Error("degenerate normalization should be 0")
	}
	if !almostEqual(Normalized(4, 16), 1, 1e-12) {
		t.Error("4 bits over 16 outcomes is maximal")
	}
}

func TestShannonUpperBoundProperty(t *testing.T) {
	// Property: 0 <= H <= log2(#positive outcomes).
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		k := 0
		for i, v := range raw {
			counts[i] = int(v)
			if v > 0 {
				k++
			}
		}
		h := Shannon(counts)
		if h < 0 {
			return false
		}
		if k == 0 {
			return h == 0
		}
		return h <= math.Log2(float64(k))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func constantAddrs(n int, s string) []ip6.Addr {
	a := ip6.MustParseAddr(s)
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = a
	}
	return out
}

func TestProfileConstantSet(t *testing.T) {
	p := NewProfile(constantAddrs(100, "2001:db8::1"))
	if p.N != 100 {
		t.Fatalf("N = %d", p.N)
	}
	for i, h := range p.H {
		if h != 0 {
			t.Errorf("nybble %d entropy = %v, want 0 for constant set", i, h)
		}
	}
	if p.Total() != 0 {
		t.Errorf("Total = %v", p.Total())
	}
	v, ok := p.Constant(0)
	if !ok || v != 2 {
		t.Errorf("Constant(0) = %v, %v", v, ok)
	}
	mc, prob := p.MostCommon(31)
	if mc != 1 || prob != 1 {
		t.Errorf("MostCommon(31) = %v, %v", mc, prob)
	}
}

func TestProfilePaperExample(t *testing.T) {
	// Fig. 3 of the paper: five addresses where the last nybble takes "c"
	// twice and "f" thrice -> normalized entropy ~0.24.
	lines := []string{
		"20010db840011111000000000000111c",
		"20010db840011111000000000000111f",
		"20010db840031c13000000000000200c",
		"20010db8400a2f2a000000000000200f",
		"20010db840011111000000000000111f",
	}
	addrs := make([]ip6.Addr, len(lines))
	for i, l := range lines {
		addrs[i] = ip6.MustParseHex(l)
	}
	p := NewProfile(addrs)
	if !almostEqual(p.H[31], 0.2427, 5e-4) {
		t.Errorf("H[31] = %v, want ~0.243 (paper Eq. 2)", p.H[31])
	}
	// Hex chars 1-11 (0-based 0..10) are constant in Fig. 3.
	for i := 0; i < 11; i++ {
		if p.H[i] != 0 {
			t.Errorf("H[%d] = %v, want 0", i, p.H[i])
		}
	}
	// Hex chars 12-16 (0-based 11..15) vary.
	varying := false
	for i := 11; i < 16; i++ {
		if p.H[i] > 0 {
			varying = true
		}
	}
	if !varying {
		t.Error("expected some entropy in nybbles 11..15")
	}
}

func TestProfileRandomIIDApproachesOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]ip6.Addr, 20000)
	base := ip6.MustParseAddr("2001:db8:1:2::")
	for i := range addrs {
		a := base
		a = a.SetField(16, 16, rng.Uint64())
		addrs[i] = a
	}
	p := NewProfile(addrs)
	for i := 0; i < 16; i++ {
		if p.H[i] != 0 {
			t.Errorf("network nybble %d should be constant", i)
		}
	}
	for i := 16; i < 32; i++ {
		if p.H[i] < 0.99 {
			t.Errorf("IID nybble %d entropy = %v, want ~1", i, p.H[i])
		}
	}
	if p.Total() < 15.8 || p.Total() > 16.2 {
		t.Errorf("Total = %v, want ~16", p.Total())
	}
}

func TestProfileEmpty(t *testing.T) {
	p := NewProfile(nil)
	if p.Total() != 0 {
		t.Error("empty profile should have zero entropy")
	}
	if _, ok := p.Constant(0); ok {
		t.Error("Constant on empty profile should be false")
	}
	if _, prob := p.MostCommon(0); prob != 0 {
		t.Error("MostCommon on empty profile should have probability 0")
	}
}

func TestConstantDetectsMixed(t *testing.T) {
	addrs := []ip6.Addr{ip6.MustParseAddr("2001:db8::1"), ip6.MustParseAddr("3001:db8::1")}
	p := NewProfile(addrs)
	if _, ok := p.Constant(0); ok {
		t.Error("nybble 0 is not constant")
	}
	if v, ok := p.Constant(1); !ok || v != 0 {
		t.Error("nybble 1 should be constant 0")
	}
}

func TestWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Addresses: constant /64, random low 16 bits.
	addrs := make([]ip6.Addr, 5000)
	base := ip6.MustParseAddr("2001:db8::")
	for i := range addrs {
		addrs[i] = base.SetField(28, 4, rng.Uint64())
	}
	w := NewWindowed(addrs)
	if len(w) != ip6.NybbleCount {
		t.Fatalf("rows = %d", len(w))
	}
	for pos, row := range w {
		if len(row) != ip6.NybbleCount-pos {
			t.Fatalf("row %d length = %d", pos, len(row))
		}
	}
	// Window fully inside the constant part has zero entropy.
	if w.At(0, 16) != 0 {
		t.Errorf("constant window entropy = %v", w.At(0, 16))
	}
	// Window over the random low nybbles: entropy is bounded by the number
	// of samples, log2(5000) ≈ 12.3 bits.
	if w.At(28, 4) < 11.5 {
		t.Errorf("random window entropy = %v, want ~12.3", w.At(28, 4))
	}
	// Full-length window entropy equals entropy over whole addresses.
	if w.At(0, 32) < 12 {
		t.Errorf("full window entropy = %v, want close to log2(5000)", w.At(0, 32))
	}
	// Monotone in window length for fixed position.
	for length := 2; length <= 32; length++ {
		if w.At(0, length) < w.At(0, length-1)-1e-9 {
			t.Errorf("windowed entropy not monotone at length %d", length)
		}
	}
	if w.Max() < 11.5 {
		t.Errorf("Max = %v", w.Max())
	}
	// Out of range queries.
	if w.At(-1, 1) != 0 || w.At(0, 0) != 0 || w.At(31, 2) != 0 {
		t.Error("out-of-range At should return 0")
	}
}

func TestBitProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	addrs := make([]ip6.Addr, 4000)
	base := ip6.MustParseAddr("2001:db8::")
	for i := range addrs {
		addrs[i] = base.SetField(24, 8, rng.Uint64())
	}
	bp := BitProfile(addrs)
	if len(bp) != 128 {
		t.Fatalf("len = %d", len(bp))
	}
	for bit := 0; bit < 96; bit++ {
		if bp[bit] != 0 {
			t.Errorf("bit %d should be constant", bit)
		}
	}
	for bit := 96; bit < 128; bit++ {
		if bp[bit] < 0.98 {
			t.Errorf("bit %d entropy = %v, want ~1", bit, bp[bit])
		}
	}
}

func TestWordProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	addrs := make([]ip6.Addr, 3000)
	base := ip6.MustParseAddr("2001:db8::")
	for i := range addrs {
		addrs[i] = base.SetField(28, 4, rng.Uint64())
	}
	wp := WordProfile(addrs)
	if len(wp) != 8 {
		t.Fatalf("len = %d", len(wp))
	}
	for w := 0; w < 7; w++ {
		if wp[w] != 0 {
			t.Errorf("word %d should be constant", w)
		}
	}
	if wp[7] <= 0 || wp[7] > 1 {
		t.Errorf("word 7 entropy = %v", wp[7])
	}
}

// (The former BenchmarkNewProfile10K lives on as the CI-gated
// BenchmarkNewProfile10k in bench_test.go, which uses the synthetic S1
// population instead of uniform random addresses.)

func BenchmarkNewWindowed1K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]ip6.Addr, 1000)
	for i := range addrs {
		var buf [16]byte
		rng.Read(buf[:])
		addrs[i] = ip6.AddrFrom16(buf)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewWindowed(addrs)
	}
}

func TestDistribution(t *testing.T) {
	if d := Distribution(nil); d != nil {
		t.Errorf("Distribution(nil) = %v, want nil", d)
	}
	if d := Distribution([]int{0, 0}); d != nil {
		t.Errorf("Distribution(zeros) = %v, want nil", d)
	}
	d := Distribution([]int{1, 3, 0})
	want := []float64{0.25, 0.75, 0}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("Distribution[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d := KLDivergence(p, p, 0); d != 0 {
		t.Errorf("KL(p,p) = %v, want 0", d)
	}
	// KL([1,0],[0.5,0.5]) = 1*log2(1/0.5) = 1 bit (up to smoothing).
	d := KLDivergence([]float64{1, 0}, []float64{0.5, 0.5}, 0)
	if math.Abs(d-1) > 1e-6 {
		t.Errorf("KL([1,0],[.5,.5]) = %v, want 1", d)
	}
	// Disjoint support stays finite thanks to smoothing.
	d = KLDivergence([]float64{1, 0}, []float64{0, 1}, 0)
	if math.IsInf(d, 1) || d <= 1 {
		t.Errorf("KL disjoint = %v, want large but finite", d)
	}
	if d := KLDivergence([]float64{1}, []float64{0.5, 0.5}, 0); d != 0 {
		t.Errorf("KL mismatched lengths = %v, want 0", d)
	}
}

func TestJensenShannon(t *testing.T) {
	p := []float64{0.25, 0.75}
	if d := JensenShannon(p, p); d != 0 {
		t.Errorf("JS(p,p) = %v, want 0", d)
	}
	// Disjoint support: exactly 1 bit.
	if d := JensenShannon([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Errorf("JS disjoint = %v, want 1", d)
	}
	// Symmetric.
	q := []float64{0.9, 0.1}
	if d1, d2 := JensenShannon(p, q), JensenShannon(q, p); d1 != d2 {
		t.Errorf("JS not symmetric: %v vs %v", d1, d2)
	}
	// Unnormalized counts behave like their normalization.
	if d1, d2 := JensenShannon([]float64{1, 3}, []float64{9, 1}), JensenShannon(p, q); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("JS unnormalized = %v, want %v", d1, d2)
	}
	// Differing lengths treat missing entries as zero probability.
	if d := JensenShannon([]float64{1}, []float64{0.5, 0.5}); d <= 0 || d > 1 {
		t.Errorf("JS ragged = %v, want in (0,1]", d)
	}
	if d := JensenShannon(nil, nil); d != 0 {
		t.Errorf("JS(nil,nil) = %v, want 0", d)
	}
}
