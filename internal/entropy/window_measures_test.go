package entropy

import (
	"math"
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
)

func TestMeasureString(t *testing.T) {
	names := map[Measure]string{
		MeasureEntropy:      "entropy",
		MeasureDistinct:     "distinct",
		MeasureTopFrequency: "top-frequency",
		Measure(9):          "measure(9)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func windowTestAddrs(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	base := ip6.MustParseAddr("2001:db8::")
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = base.SetField(28, 4, rng.Uint64())
	}
	return out
}

func TestNewWindowedMeasureEntropyMatchesDefault(t *testing.T) {
	addrs := windowTestAddrs(500, 1)
	a := NewWindowed(addrs)
	b := NewWindowedMeasure(addrs, MeasureEntropy)
	for pos := range a {
		for l := range a[pos] {
			if math.Abs(a[pos][l]-b[pos][l]) > 1e-12 {
				t.Fatalf("mismatch at pos %d len %d: %v vs %v", pos, l+1, a[pos][l], b[pos][l])
			}
		}
	}
}

func TestNewWindowedMeasureDistinct(t *testing.T) {
	addrs := windowTestAddrs(2000, 2)
	w := NewWindowedMeasure(addrs, MeasureDistinct)
	// Constant windows: one distinct value -> log2(1) = 0.
	if w.At(0, 16) != 0 {
		t.Errorf("constant window distinct measure = %v", w.At(0, 16))
	}
	// The random 16-bit tail: distinct count near min(2000, 65536),
	// log2 of which is ≈ 10.9.
	if w.At(28, 4) < 10 || w.At(28, 4) > 11.1 {
		t.Errorf("random window distinct measure = %v", w.At(28, 4))
	}
	// Distinct-count measure always upper-bounds entropy.
	we := NewWindowed(addrs)
	for pos := range w {
		for l := range w[pos] {
			if we[pos][l] > w[pos][l]+1e-9 {
				t.Fatalf("entropy exceeds log2(distinct) at pos %d len %d", pos, l+1)
			}
		}
	}
}

func TestNewWindowedMeasureTopFrequency(t *testing.T) {
	addrs := windowTestAddrs(2000, 3)
	w := NewWindowedMeasure(addrs, MeasureTopFrequency)
	// Constant windows: the top value has frequency 1 -> measure 0.
	if w.At(0, 16) != 0 {
		t.Errorf("constant window top-frequency measure = %v", w.At(0, 16))
	}
	// Random windows: no value dominates -> measure close to 1.
	if w.At(28, 4) < 0.95 {
		t.Errorf("random window top-frequency measure = %v", w.At(28, 4))
	}
	// Values always lie in [0, 1].
	for pos := range w {
		for l, v := range w[pos] {
			if v < 0 || v > 1 {
				t.Fatalf("top-frequency out of range at pos %d len %d: %v", pos, l+1, v)
			}
		}
	}
}

func TestNewWindowedMeasureEmpty(t *testing.T) {
	for _, m := range []Measure{MeasureEntropy, MeasureDistinct, MeasureTopFrequency} {
		w := NewWindowedMeasure(nil, m)
		if len(w) != ip6.NybbleCount {
			t.Fatalf("measure %v: rows = %d", m, len(w))
		}
		if w.Max() != 0 {
			t.Errorf("measure %v of empty set should be all zero", m)
		}
	}
}
