// Package entropy implements the information-theoretic measurements at the
// heart of Entropy/IP (§4.1 of the paper): the normalized Shannon entropy
// of each nybble position across a set of IPv6 addresses, the total entropy
// of a set, and the windowed entropy analysis shown in Fig. 5.
package entropy

import (
	"math"
	"sort"

	"entropyip/internal/ip6"
	"entropyip/internal/parallel"
)

// Shannon returns the Shannon entropy, in bits, of a discrete distribution
// given by the counts of each outcome. Zero counts are ignored. The result
// is 0 for an empty or single-outcome distribution.
func Shannon(counts []int) float64 {
	total := 0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// ShannonMap returns the Shannon entropy, in bits, of a distribution
// represented as a map from outcome to count. Go map iteration is
// randomized and floating-point addition is not associative, so the sum
// runs over the counts in sorted order: the result is bit-identical
// across runs (and across worker counts in NewWindowed), not merely equal
// to rounding.
func ShannonMap[K comparable](counts map[K]int) float64 {
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			vals = append(vals, c)
		}
	}
	sort.Ints(vals)
	return Shannon(vals)
}

// Normalized returns the entropy normalized by the maximum entropy log2(k)
// of a k-outcome distribution, as the paper does (Eq. 2). For k <= 1 the
// result is 0.
func Normalized(h float64, k int) float64 {
	if k <= 1 || h <= 0 {
		return 0
	}
	return h / math.Log2(float64(k))
}

// Profile holds the per-nybble entropy of a set of addresses.
type Profile struct {
	// H is the normalized entropy of each of the 32 nybble positions,
	// each in [0, 1]: H[i] is the entropy of nybble i (0-based) divided by
	// log2(16).
	H [ip6.NybbleCount]float64
	// Raw is the unnormalized entropy, in bits, of each nybble position.
	Raw [ip6.NybbleCount]float64
	// Counts[i][v] is the number of addresses whose nybble i has value v.
	Counts [ip6.NybbleCount][16]int
	// N is the number of addresses in the profile.
	N int
}

// NewProfile computes the per-nybble entropy profile of the addresses,
// using all available cores. The result is identical for any worker count;
// use NewProfileWorkers to bound concurrency.
func NewProfile(addrs []ip6.Addr) *Profile {
	return NewProfileWorkers(addrs, 0)
}

// nybbleCounts is the per-nybble value histogram one shard of addresses
// contributes to a profile.
type nybbleCounts [ip6.NybbleCount][16]int

// NewProfileWorkers is NewProfile with bounded concurrency: the address
// slice is split into contiguous shards counted by at most `workers`
// goroutines (<= 0 selects GOMAXPROCS), and the integer per-shard count
// matrices are merged in shard order — so the profile is bit-identical
// regardless of the worker count.
func NewProfileWorkers(addrs []ip6.Addr, workers int) *Profile {
	p := &Profile{N: len(addrs)}
	parts := parallel.MapShards(workers, len(addrs), func(s parallel.Shard) *nybbleCounts {
		var c nybbleCounts
		for _, a := range addrs[s.Start:s.End] {
			n := a.Nybbles()
			for i := 0; i < ip6.NybbleCount; i++ {
				c[i][n[i]]++
			}
		}
		return &c
	})
	for _, c := range parts {
		for i := 0; i < ip6.NybbleCount; i++ {
			for v := 0; v < 16; v++ {
				p.Counts[i][v] += c[i][v]
			}
		}
	}
	for i := 0; i < ip6.NybbleCount; i++ {
		h := Shannon(p.Counts[i][:])
		p.Raw[i] = h
		p.H[i] = Normalized(h, 16)
	}
	return p
}

// Total returns the total entropy H_S of the profile (Eq. 3): the sum of
// the normalized per-nybble entropies. It quantifies how hard it is to
// guess addresses of the set by chance.
func (p *Profile) Total() float64 {
	sum := 0.0
	for _, h := range p.H {
		sum += h
	}
	return sum
}

// Constant reports whether nybble i takes a single value across the set
// (entropy zero with at least one observation), and returns that value.
func (p *Profile) Constant(i int) (value byte, ok bool) {
	if p.N == 0 {
		return 0, false
	}
	seen := -1
	for v, c := range p.Counts[i] {
		if c > 0 {
			if seen >= 0 {
				return 0, false
			}
			seen = v
		}
	}
	if seen < 0 {
		return 0, false
	}
	return byte(seen), true
}

// MostCommon returns the most common value of nybble i and its empirical
// probability. Ties are broken toward the smaller value.
func (p *Profile) MostCommon(i int) (value byte, prob float64) {
	best, bestCount := 0, -1
	for v, c := range p.Counts[i] {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	if p.N == 0 {
		return 0, 0
	}
	return byte(best), float64(bestCount) / float64(p.N)
}

// Windowed computes the windowed entropy analysis of Fig. 5: for every
// window position (starting nybble) and window length, the unnormalized
// entropy of the string of nybbles in that window across the address set.
//
// The result is indexed as W[pos][length-1] with pos in 0..31 and length in
// 1..32-pos, i.e. W[pos] has 32-pos entries. Values are in bits
// (unnormalized, as in the paper's figure).
type Windowed [][]float64

// NewWindowed computes the windowed entropy matrix for the addresses,
// using all available cores. Cost is O(len(addrs) · 32 · 32 / 2) hash
// operations; for the sizes used in this repository (≤ 100K addresses)
// this completes in seconds. The result is identical for any worker
// count; use NewWindowedWorkers to bound concurrency.
func NewWindowed(addrs []ip6.Addr) Windowed {
	return NewWindowedWorkers(addrs, 0)
}

// NewWindowedWorkers is NewWindowed with bounded concurrency (<= 0 selects
// GOMAXPROCS). Window positions are independent — each row of the matrix
// is computed by exactly one goroutine — so the result is bit-identical
// regardless of the worker count. Positions are dispatched dynamically
// because the work per position is skewed (position 0 has 32 window
// lengths, position 31 has one).
func NewWindowedWorkers(addrs []ip6.Addr, workers int) Windowed {
	w := make(Windowed, ip6.NybbleCount)
	// Pre-expand nybbles once, sharded across workers.
	nybs := make([]ip6.Nybbles, len(addrs))
	parallel.ForEachShard(workers, len(addrs), func(s parallel.Shard) {
		for i := s.Start; i < s.End; i++ {
			nybs[i] = addrs[i].Nybbles()
		}
	})
	parallel.ForEach(workers, ip6.NybbleCount, func(pos int) {
		maxLen := ip6.NybbleCount - pos
		w[pos] = make([]float64, maxLen)
		for length := 1; length <= maxLen; length++ {
			counts := make(map[string]int, 64)
			for i := range nybs {
				key := string(nybs[i][pos : pos+length])
				counts[key]++
			}
			w[pos][length-1] = ShannonMap(counts)
		}
	})
	return w
}

// At returns the windowed entropy for the window starting at nybble pos
// with the given length in nybbles. It returns 0 for out-of-range queries.
func (w Windowed) At(pos, length int) float64 {
	if pos < 0 || pos >= len(w) || length < 1 || length > len(w[pos]) {
		return 0
	}
	return w[pos][length-1]
}

// Max returns the maximum entropy value in the matrix (useful for scaling
// heat-map rendering).
func (w Windowed) Max() float64 {
	max := 0.0
	for _, row := range w {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Distribution normalizes a count histogram into a probability
// distribution. An all-zero (or empty) histogram yields a nil slice.
func Distribution(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		if c > 0 {
			out[i] = float64(c) / float64(total)
		}
	}
	return out
}

// KLDivergence returns the Kullback–Leibler divergence D(p‖q) in bits.
// Outcomes where q is zero but p is not would make the divergence infinite;
// q is smoothed with eps (<= 0 selects 1e-9) so the result stays finite and
// usable as a drift signal. p and q must be the same length; probabilities
// need not be exactly normalized (each side is renormalized after
// smoothing).
func KLDivergence(p, q []float64, eps float64) float64 {
	if len(p) != len(q) || len(p) == 0 {
		return 0
	}
	if eps <= 0 {
		eps = 1e-9
	}
	pt, qt := 0.0, 0.0
	for i := range p {
		pt += p[i]
		qt += q[i] + eps
	}
	if pt <= 0 || qt <= 0 {
		return 0
	}
	d := 0.0
	for i := range p {
		pi := p[i] / pt
		if pi <= 0 {
			continue
		}
		qi := (q[i] + eps) / qt
		d += pi * math.Log2(pi/qi)
	}
	if d < 0 {
		return 0 // numeric noise on (near-)identical distributions
	}
	return d
}

// JensenShannon returns the Jensen–Shannon divergence between p and q in
// bits: JS(p,q) = H(m) − (H(p)+H(q))/2 with m the midpoint distribution.
// It is symmetric, finite without smoothing, and bounded to [0, 1] for
// base-2 logs — which makes it the natural drift score. Inputs need not be
// exactly normalized; a nil or all-zero side contributes nothing.
func JensenShannon(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	if n == 0 {
		return 0
	}
	at := func(s []float64, i int) float64 {
		if i < len(s) && s[i] > 0 {
			return s[i]
		}
		return 0
	}
	pt, qt := 0.0, 0.0
	for i := 0; i < n; i++ {
		pt += at(p, i)
		qt += at(q, i)
	}
	if pt <= 0 || qt <= 0 {
		return 0
	}
	js := 0.0
	for i := 0; i < n; i++ {
		pi, qi := at(p, i)/pt, at(q, i)/qt
		mi := (pi + qi) / 2
		if pi > 0 {
			js += pi / 2 * math.Log2(pi/mi)
		}
		if qi > 0 {
			js += qi / 2 * math.Log2(qi/mi)
		}
	}
	if js < 0 {
		return 0
	}
	if js > 1 {
		return 1
	}
	return js
}

// BitProfile computes a per-bit (1-bit granularity) normalized entropy
// profile. The paper discusses 1-bit and 16-bit alternatives to the 4-bit
// default (§4.5); this is provided for that ablation.
func BitProfile(addrs []ip6.Addr) []float64 {
	counts := make([][2]int, 128)
	for _, a := range addrs {
		b := a.Bytes()
		for bit := 0; bit < 128; bit++ {
			v := b[bit/8] >> (7 - uint(bit%8)) & 1
			counts[bit][v]++
		}
	}
	out := make([]float64, 128)
	for i, c := range counts {
		out[i] = Normalized(Shannon(c[:]), 2)
	}
	return out
}

// WordProfile computes a per-16-bit-word normalized entropy profile
// (8 words per address), the other granularity discussed in §4.5.
func WordProfile(addrs []ip6.Addr) []float64 {
	counts := make([]map[uint16]int, 8)
	for i := range counts {
		counts[i] = make(map[uint16]int)
	}
	for _, a := range addrs {
		b := a.Bytes()
		for w := 0; w < 8; w++ {
			v := uint16(b[2*w])<<8 | uint16(b[2*w+1])
			counts[w][v]++
		}
	}
	out := make([]float64, 8)
	for i, c := range counts {
		out[i] = Normalized(ShannonMap(c), 1<<16)
	}
	return out
}
